"""Extension policies built on the :class:`ClusterPolicy` seam.

Four scenarios beyond the paper's comparison set, all motivated by related
work on LLM serving schedulers:

* ``slo-least-load`` — SLO-aware least-loaded placement in the spirit of
  *SLO-Aware Scheduling for Large Language Model Inferences*: route to the
  SLO-clean instance carrying the least load and re-balance answering
  requests the same way at phase boundaries, subject to PASCAL's adaptive
  memory veto.  The load signal is live request count by default, or —
  with ``ExtensionPolicyConfig.least_load_weighted`` — the monitor's
  *pending decode tokens*, which sees request-size heterogeneity that raw
  queue depth ignores.
* ``length-predictive`` — a length-aware PASCAL variant in the spirit of
  *CascadeInfer: Length-Aware Scheduling of LLM Serving*: an online
  per-dataset EWMA predicts each reasoning request's remaining tokens, and
  arrivals are routed by *predicted future* KV footprint instead of the
  current footprint ``m_i``.  The predictor learns only from observed phase
  transitions — it never peeks at a request's scripted lengths.
* ``tiered-express`` — a heterogeneous pool (CascadeInfer-style length
  tiering): :class:`repro.config.PoolSpec` reserves the lowest-iid
  instances as an FCFS "express" tier, and arrivals whose predicted
  reasoning length falls under the tier threshold are routed there, away
  from the long chains of thought that inflate queueing tails.  The
  remaining instances run PASCAL's hierarchical scheduler.
* ``speculative-replace`` — ALISE-style speculative deferral and
  replacement on top of ``length-predictive``: rank-uncertain arrivals
  wait in the cluster's deferral room until in-flight completions tighten
  the predictor, predicted-long arrivals wait out monitor-reported
  pressure, and on a pressured placement target the predicted-longest
  in-flight reasoning request is demoted (PASCAL's own demotion
  mechanics) to make room.  See :class:`SpeculativeReplacePolicy`.

Every predictor records its per-dataset absolute prediction error, surfaced
through :meth:`~repro.core.policy.ClusterPolicy.predictor_errors` into
:class:`~repro.metrics.collector.RunMetrics`, so predictor quality is a
first-class output of every sweep.  Next to it sits the prequential
*ranking* record (:meth:`ReasoningLengthPredictor.rank_report`): every
observed reasoning length paired with the predictor's pre-update score,
feeding the Kendall-tau rank-correlation columns — the metric placement
actually consumes, since routing and replacement compare requests rather
than read token values.

Three predictor variants are registered
(``ExtensionPolicyConfig.predictor``): the flat per-dataset EWMA
(``"ewma"``, an online mean), the per-bucket EWMA (``"bucketed-ewma"``, an
online weighted-median — see :class:`BucketedEWMAPredictor` — which
resists the lognormal tail that inflates the flat EWMA's absolute error),
and online pairwise learning-to-rank (``"pairwise-ltr"`` — see
:class:`PairwiseLTRPredictor` — which learns the *order* of reasoning
lengths directly from completed-request pairs).

Tunables live in :class:`repro.config.ExtensionPolicyConfig`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.config import ExtensionPolicyConfig
from repro.core.adaptive import AdaptiveMigrationPolicy
from repro.core.pascal import PascalScheduler
from repro.core.placement import least_kv_placement
from repro.core.policies import PascalPolicy
from repro.core.policy import ClusterPolicy
from repro.core.registry import register_policy
from repro.schedulers.base import IntraScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.serving.instance import ServingInstance
from repro.workload.request import Request

if TYPE_CHECKING:  # annotation-only: repro.api imports the cluster core
    from repro.cluster.cluster import Cluster
    from repro.api.admission import AdmissionDecision


class ReasoningLengthPredictor:
    """Online EWMA of reasoning lengths, keyed by dataset label.

    ``observe`` feeds one completed reasoning phase; ``predict_total``
    returns the current estimate for a request's dataset, falling back to
    the global estimate (any dataset) and then to the configured prior.

    Each observation also scores the *one-step-ahead (prequential)* error:
    the current estimate immediately before the update, against the
    observed length.  (Policies consult the predictor continuously, so
    there is no single "routing-time" prediction per request to score;
    predict-then-update is the standard online accuracy metric.)  Absolute
    errors in tokens accumulate per dataset in :attr:`abs_errors`, feeding
    the predictor-accuracy columns of the experiment tables.
    """

    def __init__(self, alpha: float = 0.25, prior_tokens: int = 600):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if prior_tokens < 1:
            raise ValueError(f"prior must be >= 1 token, got {prior_tokens}")
        self.alpha = alpha
        self.prior_tokens = float(prior_tokens)
        self._per_dataset: dict[str, float] = {}
        self._global: float | None = None
        self.n_observations = 0
        #: Per-dataset |predicted - actual| reasoning lengths (tokens), in
        #: observation order.
        self.abs_errors: dict[str, list[float]] = {}
        #: Per-dataset (predicted score, observed length) pairs, same
        #: prequential discipline as :attr:`abs_errors` — the raw
        #: material of the Kendall-tau rank-correlation metric.
        self.rank_pairs: dict[str, list[tuple[float, float]]] = {}

    def observe(self, req: Request, reasoning_tokens: int) -> None:
        """Record one observed reasoning length (at its phase transition)."""
        value = float(reasoning_tokens)
        self.abs_errors.setdefault(req.dataset, []).append(
            abs(self.predict_total(req) - value)
        )
        self.rank_pairs.setdefault(req.dataset, []).append(
            (self.rank_of(req), value)
        )
        current = self._per_dataset.get(req.dataset)
        self._per_dataset[req.dataset] = (
            value
            if current is None
            else current + self.alpha * (value - current)
        )
        self._global = (
            value
            if self._global is None
            else self._global + self.alpha * (value - self._global)
        )
        self.n_observations += 1

    def error_report(self) -> dict[str, tuple[float, ...]]:
        """The accumulated per-dataset absolute errors, frozen for metrics."""
        return {
            dataset: tuple(errors)
            for dataset, errors in sorted(self.abs_errors.items())
        }

    def rank_report(self) -> dict[str, tuple[tuple[float, float], ...]]:
        """The accumulated (score, observed) pairs, frozen for metrics."""
        return {
            dataset: tuple(pairs)
            for dataset, pairs in sorted(self.rank_pairs.items())
        }

    def dataset_observations(self, dataset: str) -> int:
        """Observed reasoning lengths so far for one dataset label."""
        return len(self.abs_errors.get(dataset, ()))

    def predict_total(self, req: Request) -> float:
        """Estimated total reasoning tokens for a request like ``req``."""
        estimate = self._per_dataset.get(req.dataset)
        if estimate is None:
            estimate = self._global
        if estimate is None:
            estimate = self.prior_tokens
        return estimate

    def predict_remaining(self, req: Request) -> float:
        """Estimated reasoning tokens ``req`` has still to generate."""
        if not req.in_reasoning:
            return 0.0
        return max(self.predict_total(req) - req.generated_tokens, 0.0)

    def rank_of(self, req: Request) -> float:
        """Ranking score: higher = predicted to reason longer.

        For the EWMA family the token estimate itself is the score; the
        pairwise learning-to-rank predictor overrides this with its
        learned (unitless) score.  Kendall-tau over (score, observed)
        pairs is invariant to any strictly monotone rescaling, so the two
        kinds of score are directly comparable in the metrics.
        """
        return self.predict_total(req)


class BucketedEWMAPredictor(ReasoningLengthPredictor):
    """Per-bucket EWMA: a weighted-median estimator for skewed lengths.

    The flat EWMA tracks the *mean* of each dataset's reasoning-length
    distribution — and the paper's datasets are lognormal, so the mean
    sits well above the typical request and every tail observation drags
    the estimate further up.  Mean absolute error (the metric the sweeps
    report) is minimized by the *median*, not the mean.

    This variant keeps, per dataset, a set of geometric length buckets
    (one per bit-length, so ~14 buckets cover 1..16k tokens) holding:

    * an EWMA-decayed **weight** — the recency-weighted fraction of
      observations landing in the bucket.  Weights decay at ``alpha / 10``
      (a median needs a longer memory than a mean: at the raw ``alpha``
      the histogram effectively remembers ~4 observations and the
      "median" is noise — the slow decay recovers nearly the full
      oracle-median gain while still tracking workload drift),
    * an EWMA **value** at the full ``alpha`` — the running estimate of
      lengths within the bucket.

    ``predict_total`` returns the value of the weighted-median bucket —
    the bucket where the cumulative weight first reaches half — which
    follows the distribution's body and ignores how heavy the tail is,
    while still adapting if the workload genuinely shifts.  Selected via
    ``ExtensionPolicyConfig.predictor = "bucketed-ewma"``.

    Error accounting is inherited unchanged: every observation scores the
    one-step-ahead (prequential) absolute error of *this* estimator, so
    flat and bucketed variants are directly comparable in the experiment
    tables.
    """

    #: Histogram weights decay this much slower than the value EWMA.
    HIST_ALPHA_FRACTION = 0.1

    def __init__(self, alpha: float = 0.25, prior_tokens: int = 600):
        super().__init__(alpha, prior_tokens)
        self.hist_alpha = alpha * self.HIST_ALPHA_FRACTION
        #: dataset -> bucket -> EWMA-decayed observation weight.
        self._bucket_weights: dict[str, dict[int, float]] = {}
        #: dataset -> bucket -> EWMA of observed lengths in the bucket.
        self._bucket_values: dict[str, dict[int, float]] = {}

    @staticmethod
    def _bucket(tokens: float) -> int:
        """Geometric bucket index (bit length of the token count)."""
        return max(1, int(tokens)).bit_length()

    def observe(self, req: Request, reasoning_tokens: int) -> None:
        # The base class scores the prequential error first — through the
        # *overridden* predict_total, so the error ledger reflects this
        # estimator — then refreshes the dataset/global fallback means.
        super().observe(req, reasoning_tokens)
        value = float(reasoning_tokens)
        bucket = self._bucket(value)
        weights = self._bucket_weights.setdefault(req.dataset, {})
        values = self._bucket_values.setdefault(req.dataset, {})
        for index in weights:
            weights[index] *= 1.0 - self.hist_alpha
        weights[bucket] = weights.get(bucket, 0.0) + self.hist_alpha
        current = values.get(bucket)
        values[bucket] = (
            value
            if current is None
            else current + self.alpha * (value - current)
        )

    def predict_total(self, req: Request) -> float:
        weights = self._bucket_weights.get(req.dataset)
        if not weights:
            # No observations for this dataset yet: flat-EWMA fallback
            # chain (dataset mean -> global mean -> prior).
            return super().predict_total(req)
        total = sum(weights.values())
        if total <= 0.0:
            # Degenerate histogram: every bucket weight decayed (or, with
            # an adversarially tiny alpha, underflowed) to zero, so a
            # "weighted median" of zero mass would just pick the lowest
            # bucket's stale value.  The dataset *has* observations —
            # fall back to the flat-EWMA chain, whose dataset mean is
            # well defined.
            return super().predict_total(req)
        half = 0.5 * total
        acc = 0.0
        for index in sorted(weights):
            acc += weights[index]
            if acc >= half:
                return self._bucket_values[req.dataset][index]
        # Accumulating in sorted-bucket order can round a hair below the
        # half computed from insertion-order summation; the median is the
        # last bucket then.
        return self._bucket_values[req.dataset][max(weights)]


class PairwiseLTRPredictor(ReasoningLengthPredictor):
    """Online pairwise learning-to-rank over completed-request pairs.

    *Ranking Before Serving*'s observation: placement and preemption
    consume only the **order** of reasoning lengths — which request will
    reason longer — never the token values, so learning the order
    directly is an easier problem than value regression.  This predictor
    keeps a sparse linear model over features observable at arrival:

    * a bias,
    * a dataset one-hot (``dataset:<name>``),
    * the log-scaled prompt length,
    * an arrival-tier one-hot — the geometric tier (bit length) of the
      prompt, the only magnitude a request presents at arrival time.

    Training is online pairwise logistic regression: each observed
    completion is paired with the most recent buffered completions, and
    the model does one SGD step per pair on the logistic loss of
    ``P(i reasons longer than j) = sigmoid(w . (x_i - x_j))`` — the
    classic RankNet/Bradley-Terry objective.  ``alpha`` doubles as the
    SGD step size.

    :meth:`rank_of` returns the learned score ``w . x`` (unitless —
    ordering is the contract).  Value queries (:meth:`predict_total`,
    :meth:`predict_remaining`) fall back to the inherited flat-EWMA
    chain, so policies that need a token estimate still get one; the
    inherited :attr:`abs_errors` therefore scores the EWMA values while
    :attr:`rank_pairs` scores this model, which is exactly the
    regression-vs-ranking comparison the experiment tables print.
    """

    #: Completed examples retained for pairing (features, observed value).
    BUFFER_SIZE = 64
    #: New observations are paired against this many recent examples.
    PAIRS_PER_UPDATE = 8
    #: Clamp on score deltas before the sigmoid (overflow guard).
    MAX_LOGIT = 35.0

    def __init__(self, alpha: float = 0.25, prior_tokens: int = 600):
        super().__init__(alpha, prior_tokens)
        self._weights: dict[str, float] = {}
        #: Ring buffer of recent (features, observed length) examples.
        self._examples: list[tuple[dict[str, float], float]] = []
        self._next_slot = 0

    @staticmethod
    def _features(req: Request) -> dict[str, float]:
        prompt = max(1, req.prompt_len)
        return {
            "bias": 1.0,
            f"dataset:{req.dataset}": 1.0,
            "log-prompt": math.log1p(float(prompt)) / 10.0,
            f"tier:{prompt.bit_length()}": 1.0,
        }

    def _score(self, features: dict[str, float]) -> float:
        # Sorted-key accumulation: float addition is order-sensitive and
        # this score feeds placement decisions.
        return sum(
            self._weights.get(name, 0.0) * features[name]
            for name in sorted(features)
        )

    def rank_of(self, req: Request) -> float:
        return self._score(self._features(req))

    def _sgd_pair(
        self,
        features: dict[str, float],
        value: float,
        other_features: dict[str, float],
        other_value: float,
    ) -> None:
        delta = {
            name: features.get(name, 0.0) - other_features.get(name, 0.0)
            for name in sorted(set(features) | set(other_features))
        }
        logit = sum(
            self._weights.get(name, 0.0) * delta[name]
            for name in sorted(delta)
        )
        logit = max(-self.MAX_LOGIT, min(self.MAX_LOGIT, logit))
        predicted = 1.0 / (1.0 + math.exp(-logit))
        target = 1.0 if value > other_value else 0.0
        gradient = predicted - target
        for name in sorted(delta):
            if delta[name] != 0.0:
                self._weights[name] = (
                    self._weights.get(name, 0.0)
                    - self.alpha * gradient * delta[name]
                )

    def observe(self, req: Request, reasoning_tokens: int) -> None:
        features = self._features(req)
        # The base class scores the prequential records first (rank_pairs
        # via the *overridden* rank_of, pre-update) and refreshes the
        # EWMA value fallbacks.
        super().observe(req, reasoning_tokens)
        value = float(reasoning_tokens)
        recent = self._recent_examples()
        for other_features, other_value in recent:
            if other_value == value:
                continue  # no ordering signal in a tie
            self._sgd_pair(features, value, other_features, other_value)
        if len(self._examples) < self.BUFFER_SIZE:
            self._examples.append((features, value))
        else:
            self._examples[self._next_slot] = (features, value)
            self._next_slot = (self._next_slot + 1) % self.BUFFER_SIZE

    def _recent_examples(self) -> list[tuple[dict[str, float], float]]:
        """The newest ``PAIRS_PER_UPDATE`` buffered examples, oldest first."""
        n = len(self._examples)
        if n <= self.PAIRS_PER_UPDATE:
            return list(self._examples)
        if n < self.BUFFER_SIZE:
            return self._examples[n - self.PAIRS_PER_UPDATE:]
        newest = (self._next_slot - 1) % self.BUFFER_SIZE
        return [
            self._examples[(newest - offset) % self.BUFFER_SIZE]
            for offset in range(self.PAIRS_PER_UPDATE - 1, -1, -1)
        ]


#: Predictor registry keyed by ``ExtensionPolicyConfig.predictor``.
PREDICTORS = {
    "ewma": ReasoningLengthPredictor,
    "bucketed-ewma": BucketedEWMAPredictor,
    "pairwise-ltr": PairwiseLTRPredictor,
}


def make_predictor(knobs: ExtensionPolicyConfig) -> ReasoningLengthPredictor:
    """Build the reasoning-length predictor the config selects."""
    try:
        cls = PREDICTORS[knobs.predictor]
    except KeyError:
        raise ValueError(
            f"unknown predictor {knobs.predictor!r}; expected one of "
            f"{', '.join(sorted(PREDICTORS))}"
        ) from None
    return cls(
        alpha=knobs.predictor_alpha, prior_tokens=knobs.predictor_prior_tokens
    )


@register_policy
class SLOAwareLeastLoadPolicy(ClusterPolicy):
    """SLO-aware least-load: route to the SLO-clean instance carrying the
    least load (live requests, or pending decode tokens when weighted);
    re-balance at phase boundaries under the adaptive memory veto."""

    name = "slo-least-load"

    def make_intra_scheduler(self, iid: int) -> IntraScheduler:
        return RoundRobinScheduler(
            quantum_tokens=self.config.instance.scheduler.token_quantum
        )

    def on_bind(self, cluster) -> None:
        self.knobs: ExtensionPolicyConfig = self.config.extensions
        self.adaptive = AdaptiveMigrationPolicy(
            growth_headroom_tokens=self.config.instance.scheduler.token_quantum
        )

    def _load_key(self, inst: ServingInstance) -> tuple:
        if self.knobs.least_load_weighted:
            # Token-denominated load: one 8k-token chain of thought weighs
            # as much as dozens of short chats, which raw depth misses.
            return (
                self.monitor.pending_decode_tokens(inst),
                inst.total_kv_tokens(),
                inst.iid,
            )
        return (len(inst.live_requests()), inst.total_kv_tokens(), inst.iid)

    def select(self, now: float) -> ServingInstance:
        """SLO-clean least-load instance (all instances when none is clean)."""
        return min(self.slo_clean_instances(now), key=self._load_key)

    def place_arrival(self, req: Request, now: float) -> ServingInstance:
        return self.select(now)

    def on_phase_transition(
        self, req: Request, src: ServingInstance, now: float
    ) -> None:
        if not self.knobs.least_load_migration:
            src.scheduler.on_phase_transition_local(req, now)
            return
        target = self.select(now)
        if self.adaptive.should_migrate(req, src, target):
            self.route_transition(req, src, target, now)
        else:
            src.scheduler.on_phase_transition_local(req, now)


@register_policy
class LengthPredictivePolicy(PascalPolicy):
    """Length-predictive PASCAL variant: Algorithm 1's ``m_i`` is replaced
    by the *predicted future* footprint ``m_i + sum(predicted remaining
    reasoning tokens)``, learned online from observed transitions."""

    name = "length-predictive"

    def on_bind(self, cluster) -> None:
        super().on_bind(cluster)
        self.predictor = make_predictor(self.config.extensions)

    def predicted_footprint(self, inst: ServingInstance) -> float:
        """Current KV footprint plus predicted reasoning growth."""
        return inst.total_kv_tokens() + sum(
            self.predictor.predict_remaining(r) for r in inst.live_requests()
        )

    def place_arrival(self, req: Request, now: float) -> ServingInstance:
        return min(
            self.slo_clean_instances(now),
            key=lambda inst: (self.predicted_footprint(inst), inst.iid),
        )

    def on_phase_transition(
        self, req: Request, src: ServingInstance, now: float
    ) -> None:
        # The end-of-think token just appeared: the one moment the
        # reasoning length becomes observable without an oracle.
        self.predictor.observe(req, req.generated_tokens)
        super().on_phase_transition(req, src, now)

    def predictor_errors(self) -> dict[str, tuple[float, ...]]:
        return self.predictor.error_report()

    def predictor_rank_pairs(
        self,
    ) -> dict[str, tuple[tuple[float, float], ...]]:
        return self.predictor.rank_report()


@register_policy
class TieredExpressPolicy(ClusterPolicy):
    """Heterogeneous pool: FCFS "express" instances serve predicted-short
    requests, PASCAL instances serve the rest (length-aware tiering in the
    spirit of CascadeInfer)."""

    name = "tiered-express"

    def _express_count(self) -> int:
        return self.config.extensions.pool.express_count(
            self.config.n_instances
        )

    def make_intra_scheduler(self, iid: int) -> IntraScheduler:
        # Called before bind (schedulers are part of instance
        # construction), so tier membership derives from config + iid only.
        if iid < self._express_count():
            return FCFSScheduler()
        sched_cfg = self.config.instance.scheduler
        return PascalScheduler(
            quantum_tokens=sched_cfg.token_quantum,
            demotion_threshold_tokens=sched_cfg.demotion_threshold_tokens,
        )

    def on_bind(self, cluster) -> None:
        knobs: ExtensionPolicyConfig = self.config.extensions
        n_express = self._express_count()
        self.express_pool = cluster.instances[:n_express]
        self.standard_pool = cluster.instances[n_express:]
        self.threshold_tokens = knobs.pool.express_threshold_tokens
        self.predictor = make_predictor(knobs)

    def place_arrival(self, req: Request, now: float) -> ServingInstance:
        predicted = self.predictor.predict_total(req)
        if self.express_pool and predicted <= self.threshold_tokens:
            pool = self.express_pool
        else:
            pool = self.standard_pool
        clean = [
            inst for inst in pool if self.monitor.answering_slo_ok(inst, now)
        ]
        if not clean:
            # The chosen tier is saturated: spill across the whole pool
            # rather than dogpiling a violating tier.
            clean = self.slo_clean_instances(now)
        return least_kv_placement(clean, req, now)

    def on_phase_transition(
        self, req: Request, src: ServingInstance, now: float
    ) -> None:
        self.predictor.observe(req, req.generated_tokens)
        # The base default keeps the request where it reasoned: express
        # requests are short on both phases, and the standard tier's
        # hierarchical scheduler already prioritizes answering locally.
        super().on_phase_transition(req, src, now)

    def predictor_errors(self) -> dict[str, tuple[float, ...]]:
        return self.predictor.error_report()

    def predictor_rank_pairs(
        self,
    ) -> dict[str, tuple[tuple[float, float], ...]]:
        return self.predictor.rank_report()


class SpeculativeAdmission:
    """Admission gate installed by :class:`SpeculativeReplacePolicy`.

    Duck-typed against :class:`repro.api.admission.AdmissionPolicy` — the
    class cannot be imported at module scope (``repro.api`` imports the
    cluster core which imports this module through the registry), so the
    decision constructors are imported lazily at decide time.
    """

    def __init__(self, policy: "SpeculativeReplacePolicy"):
        self.policy = policy

    def decide(
        self, cluster: "Cluster", req: Request, now: float
    ) -> "AdmissionDecision":
        from repro.api import admission

        verdict = self.policy.speculative_verdict(cluster, req, now)
        if verdict is None:
            return admission.admit()
        return admission.defer(
            self.policy.knobs.speculative_defer_s, reason=verdict
        )


@register_policy
class SpeculativeReplacePolicy(LengthPredictivePolicy):
    """Length-predictive PASCAL plus speculative deferral and replacement.

    ALISE-style speculation on top of :class:`LengthPredictivePolicy`:

    * **Deferral** — arrivals whose rank is still *uncertain* (the
      predictor has seen fewer than ``speculative_min_observations``
      completions of their dataset) are parked in the cluster's waiting
      room (:meth:`~repro.cluster.cluster.Cluster.deferred`) via a
      policy-installed admission gate, and re-placed at re-arrival once
      in-flight completions have tightened the predictor.  Under
      monitor-reported pressure, predicted-long arrivals are deferred
      too.  Each request's deferral budget is
      ``speculative_max_defers``; exhausting it admits unconditionally,
      and the cluster's own livelock backstop converts progress-free
      deferral spirals into rejections.
    * **Replacement** — when the placement target is pressured, the
      predicted-longest in-flight reasoning request is demoted to the
      low-priority queue (exactly PASCAL's demotion mechanics), yielding
      the reasoning band to the arrival.

    With ``speculative_max_defers=0`` and ``speculative_preempt=False``
    no gate is installed and no demotion happens: behaviour is
    byte-identical to ``length-predictive``.
    """

    name = "speculative-replace"

    def on_bind(self, cluster) -> None:
        super().on_bind(cluster)
        self.knobs: ExtensionPolicyConfig = self.config.extensions
        self._defer_counts: dict[int, int] = {}
        if self.knobs.speculative_max_defers > 0 and cluster.admission is None:
            # An explicit session-level gate outranks speculation: callers
            # composing their own admission control keep it.
            cluster.admission = SpeculativeAdmission(self)

    def _under_pressure(self, now: float) -> bool:
        """Every instance's pending-decode backlog is at the threshold."""
        return all(
            self.monitor.pending_decode_tokens(inst)
            >= self.knobs.speculative_pressure_tokens
            for inst in self.instances
        )

    def speculative_verdict(
        self, cluster: "Cluster", req: Request, now: float
    ) -> str | None:
        """Reason to defer ``req``, or ``None`` to admit it now."""
        if (
            self._defer_counts.get(req.rid, 0)
            >= self.knobs.speculative_max_defers
        ):
            self._defer_counts.pop(req.rid, None)
            return None  # budget exhausted: place with what we know
        seen = self.predictor.dataset_observations(req.dataset)
        uncertain = seen < self.knobs.speculative_min_observations
        # active_requests() counts the request under decision; deferring
        # only helps when *other* requests are in flight to teach the
        # predictor before the re-arrival.
        if uncertain and cluster.active_requests() - 1 > 0:
            reason = (
                f"rank uncertain: {seen}/"
                f"{self.knobs.speculative_min_observations} observations "
                f"of {req.dataset!r}"
            )
        elif (
            self._under_pressure(now)
            and self.predictor.predict_total(req)
            >= self.knobs.speculative_long_tokens
        ):
            reason = "predicted-long under pressure"
        else:
            self._defer_counts.pop(req.rid, None)
            return None
        self._defer_counts[req.rid] = self._defer_counts.get(req.rid, 0) + 1
        return reason

    def _demote_predicted_longest(
        self, inst: ServingInstance, now: float
    ) -> None:
        """Demote the predicted-longest reasoning request on ``inst``.

        Mirrors :class:`~repro.core.pascal.PascalScheduler`'s demotion
        mechanics, but triggered by *predicted remaining* length instead
        of observed generated length — the replacement half of the
        speculate-and-replace loop.
        """
        candidates = [
            r for r in inst.live_requests() if r.in_reasoning and not r.demoted
        ]
        if not candidates:
            return
        victim = max(
            candidates,
            key=lambda r: (self.predictor.predict_remaining(r), r.rid),
        )
        if (
            self.predictor.predict_remaining(victim)
            < self.knobs.speculative_long_tokens
        ):
            return  # nobody on this instance is predicted-long
        victim.demoted = True
        victim.level = 0
        victim.quantum_used = 0
        victim.enqueue_seq = inst.scheduler.next_seq()
        inst.mark_dirty()

    def place_arrival(self, req: Request, now: float) -> ServingInstance:
        inst = super().place_arrival(req, now)
        if (
            self.knobs.speculative_preempt
            and self.monitor.pending_decode_tokens(inst)
            >= self.knobs.speculative_pressure_tokens
        ):
            self._demote_predicted_longest(inst, now)
        return inst
