"""Quality-of-Experience metric (Figure 3, after Andes).

QoE compares two cumulative token curves over the answering stream:

* **digested** — when each token actually reaches the user, i.e. the token
  pacer's release schedule ``r_k = max(g_k, r_{k-1} + TPOT)``;
* **expected** — the user's ideal: one token per TPOT target starting from
  an anchor (the first release for the paper's Section V variant, or the
  TTFAT target after reasoning ends for the Figure 5 characterization).

``QoE = area(digested) / area(expected)`` integrated from the anchor to
whichever curve finishes last.  A request perfectly keeping pace scores
1.0; stalls push the digested curve right and shrink its area.  The
evaluation counts an SLO violation when QoE < 0.95.
"""

from __future__ import annotations

from repro.serving.pacer import release_schedule


def _step_curve_area(token_times: list[float], horizon: float) -> float:
    """Area under a cumulative step curve from its first step to horizon.

    Token ``k`` (0-based) contributes ``horizon - t_k`` (clamped at 0):
    after time ``t_k`` the curve is at least ``k + 1`` tokens high.
    """
    return sum(max(0.0, horizon - t) for t in token_times)


def qoe_score(
    generation_times: list[float],
    tpot_target_s: float,
    anchor_t: float | None = None,
) -> float:
    """QoE in [0, 1] for one request's answering-token generation times.

    ``anchor_t`` fixes where the expected curve starts.  ``None`` anchors at
    the first actual release (the paper's Section V metric: "QoE solely
    from TPOT starting at the first answering token").  Passing an explicit
    anchor (e.g. ``reasoning_end + TTFAT target``) reproduces the stricter
    Figure 5 variant where late delivery of the first token also hurts.
    """
    if tpot_target_s <= 0:
        raise ValueError(f"tpot target must be positive, got {tpot_target_s}")
    if not generation_times:
        raise ValueError("request generated no answering tokens")
    releases = release_schedule(generation_times, tpot_target_s)
    start = releases[0] if anchor_t is None else anchor_t
    n = len(releases)
    expected = [start + k * tpot_target_s for k in range(n)]
    horizon = max(releases[-1], expected[-1])
    if horizon <= start:
        # Degenerate single-token-at-anchor case: perfect delivery.
        return 1.0
    digested_area = _step_curve_area(releases, horizon)
    expected_area = _step_curve_area(expected, horizon)
    if expected_area <= 0.0:
        return 1.0
    return min(1.0, digested_area / expected_area)


def qoe_for_request(req, tpot_target_s: float) -> float | None:
    """Section V QoE for a finished request (None when not applicable)."""
    if not req.answer_token_times:
        return None
    return qoe_score(req.answer_token_times, tpot_target_s)


def qoe_with_ttfat(
    req,
    tpot_target_s: float,
    ttfat_target_s: float,
) -> float | None:
    """Figure 5 QoE: the expected curve starts TTFAT after reasoning ends."""
    if not req.answer_token_times or req.reasoning_end_t is None:
        return None
    anchor = req.reasoning_end_t + ttfat_target_s
    return qoe_score(req.answer_token_times, tpot_target_s, anchor_t=anchor)
