"""Percentiles, binning and the paper's adaptive tail-latency rule.

Figure 10 groups requests into 256-token bins of reasoning length and, to
keep tail statistics meaningful in sparsely populated bins, varies the tail
metric with the sample count:

* fewer than  5 samples — omitted,
* fewer than 10 samples — maximum,
* fewer than 20 samples — P90,
* fewer than 100 samples — P95,
* otherwise — P99.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def percentile(values: list[float], pct: float) -> float:
    """Linear-interpolation percentile (numpy 'linear' method)."""
    if not values:
        raise ValueError("percentile of empty list")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def mean(values: list[float]) -> float:
    if not values:
        raise ValueError("mean of empty list")
    return sum(values) / len(values)


def kendall_tau(pairs: list[tuple[float, float]]) -> float:
    """Kendall rank correlation (tau-b) between paired observations.

    ``pairs`` holds ``(x, y)`` observations — here, (predicted score,
    observed reasoning length).  Tau-b handles ties on either side:

        tau_b = (C - D) / sqrt((C + D + Tx) * (C + D + Ty))

    with C/D the concordant/discordant pair counts and Tx/Ty the pairs
    tied only in x / only in y (pairs tied in both drop out of every
    term).  Scale-free: any strictly monotone transform of either side
    leaves it unchanged, which is what makes value predictors (token
    estimates) and ranking predictors (unitless scores) directly
    comparable.

    The exhaustive O(n^2) pair walk is deliberate: this runs once per
    table render over per-dataset observation lists, never inside the
    simulation loop.

    Returns NaN when one side is constant (correlation undefined);
    raises on fewer than two pairs — callers gate on sample size.
    """
    n = len(pairs)
    if n < 2:
        raise ValueError("kendall tau needs at least two pairs")
    concordant = discordant = ties_x = ties_y = 0
    for i in range(n):
        x_i, y_i = pairs[i]
        for j in range(i + 1, n):
            x_j, y_j = pairs[j]
            dx = (x_i > x_j) - (x_i < x_j)
            dy = (y_i > y_j) - (y_i < y_j)
            if dx == 0 and dy == 0:
                continue
            if dx == 0:
                ties_x += 1
            elif dy == 0:
                ties_y += 1
            elif dx == dy:
                concordant += 1
            else:
                discordant += 1
    denom = math.sqrt(
        float(concordant + discordant + ties_x)
        * float(concordant + discordant + ties_y)
    )
    if denom == 0.0:
        return float("nan")
    return (concordant - discordant) / denom


@dataclass(frozen=True)
class TailBin:
    """One reasoning-length bin of Figure 10."""

    lo: int
    hi: int
    n_samples: int
    metric_name: str
    tail_value: float

    @property
    def label(self) -> str:
        return f"[{self.lo}-{self.hi}]"


def adaptive_tail(values: list[float]) -> tuple[str, float] | None:
    """The paper's sample-size-dependent tail statistic (Figure 10)."""
    n = len(values)
    if n < 5:
        return None
    if n < 10:
        return "max", max(values)
    if n < 20:
        return "p90", percentile(values, 90.0)
    if n < 100:
        return "p95", percentile(values, 95.0)
    return "p99", percentile(values, 99.0)


def tail_ttft_bins(
    requests,
    bin_width: int = 256,
) -> list[TailBin]:
    """Figure 10: tail TTFT per reasoning-token-length bin."""
    if bin_width < 1:
        raise ValueError(f"bin width must be >= 1, got {bin_width}")
    grouped: dict[int, list[float]] = {}
    for req in requests:
        ttft = req.ttft()
        if ttft is None:
            continue
        grouped.setdefault(req.reasoning_len // bin_width, []).append(ttft)
    bins: list[TailBin] = []
    for index in sorted(grouped):
        values = grouped[index]
        tail = adaptive_tail(values)
        if tail is None:
            continue
        name, value = tail
        bins.append(
            TailBin(
                lo=index * bin_width,
                hi=(index + 1) * bin_width - 1,
                n_samples=len(values),
                metric_name=name,
                tail_value=value,
            )
        )
    return bins


def bucket_means(
    pairs: list[tuple[int, float]],
    buckets: tuple[int, ...],
) -> dict[int, float]:
    """Mean of values grouped by exact bucket key (Figures 4 and 5)."""
    grouped: dict[int, list[float]] = {b: [] for b in buckets}
    for key, value in pairs:
        if key in grouped:
            grouped[key].append(value)
    return {
        b: (sum(vs) / len(vs)) if vs else 0.0 for b, vs in grouped.items()
    }
