"""Per-run metric collection: everything a paper figure needs, in one place."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SLOConfig
from repro.metrics.slo import SLOReport, evaluate_slo
from repro.metrics.summary import kendall_tau, mean, percentile, tail_ttft_bins
from repro.workload.request import Phase, Request

PHASE_BUCKETS = ("executed", "blocked", "preempted")


@dataclass
class RunMetrics:
    """Measurements extracted from one simulation run.

    ``requests`` holds the *completed* requests; ``rejected`` the ones an
    admission policy turned away before placement (empty everywhere the
    legacy admit-everything paths run).  The two are disjoint by
    construction, and only completed requests enter the latency and SLO
    views — a rejection is an explicit outcome, not a silent violation.

    Collection is snapshot-safe: :func:`collect` may be called mid-run
    (the :class:`repro.api.ServingSession` ``metrics()`` path), in which
    case the views cover the requests resolved so far.
    """

    policy: str
    requests: list[Request]
    throughput_tokens_per_s: float = 0.0
    transfer_latencies_s: list[float] = field(default_factory=list)
    #: Per-dataset absolute reasoning-length prediction errors (tokens),
    #: reported by predictor-driven policies (``length-predictive``,
    #: ``tiered-express``); empty for everything else.
    predictor_abs_errors: dict[str, tuple[float, ...]] = field(
        default_factory=dict
    )
    #: Per-dataset ``(predicted score, observed reasoning length)`` pairs
    #: in observation order, reported by predictor-driven policies;
    #: the raw material of the Kendall-tau rank-correlation views.
    predictor_rank_pairs: dict[str, tuple[tuple[float, float], ...]] = field(
        default_factory=dict
    )
    #: Requests rejected by admission control (never placed, never run).
    rejected: list[Request] = field(default_factory=list)
    #: Requests cancelled by their client before completing (disjoint from
    #: both ``requests`` and ``rejected``: the cluster was serving them,
    #: the client walked away).  They enter no latency or SLO view.
    cancelled: list[Request] = field(default_factory=list)
    #: Admission deferral events over the run (one request deferred k
    #: times counts k; 0 everywhere no gate defers).
    n_deferrals: int = 0

    @property
    def n_rejected(self) -> int:
        """Admission rejections (``rejected`` is the full request list)."""
        return len(self.rejected)

    @property
    def n_cancelled(self) -> int:
        """Client cancellations (``cancelled`` is the full request list)."""
        return len(self.cancelled)

    # ------------------------------------------------------------------
    # latency views
    # ------------------------------------------------------------------
    # Each accessor is called exactly once per request: these views sit in
    # hot figure paths, and the `f(r) ... if f(r) is not None` idiom would
    # double the per-request work.
    def ttfts(self) -> list[float]:
        return [t for t in (r.ttft() for r in self.requests) if t is not None]

    def ttfats(self) -> list[float]:
        return [t for t in (r.ttfat() for r in self.requests) if t is not None]

    def e2e_latencies(self) -> list[float]:
        return [
            t
            for t in (r.e2e_latency() for r in self.requests)
            if t is not None
        ]

    def reasoning_latencies(self) -> list[float]:
        return [
            t
            for t in (r.reasoning_latency() for r in self.requests)
            if t is not None
        ]

    def blocking_latencies(self) -> list[float]:
        """Phase-transition blocking latency (Figure 13(c))."""
        return [
            t
            for t in (r.blocking_latency() for r in self.requests)
            if t is not None
        ]

    # The two headline accessors are NaN-safe: a run where no request
    # completed (e.g. an admission policy rejected everything) has no
    # TTFT distribution, and figure code propagates/format-guards NaN
    # where a raised ValueError would abort the whole table.
    def mean_ttft(self) -> float:
        ttfts = self.ttfts()
        return mean(ttfts) if ttfts else float("nan")

    def tail_ttft(self, pct: float = 99.0) -> float:
        ttfts = self.ttfts()
        return percentile(ttfts, pct) if ttfts else float("nan")

    def ttft_bins(self, bin_width: int = 256):
        return tail_ttft_bins(self.requests, bin_width)

    # ------------------------------------------------------------------
    # phase-time breakdowns (Figures 4, 5)
    # ------------------------------------------------------------------
    def phase_breakdown(
        self, phase: Phase, group_key
    ) -> dict[int, dict[str, float]]:
        """Mean executed/blocked/preempted seconds per request group.

        ``group_key(request) -> int`` selects the x-axis bucket (e.g. the
        request's reasoning length for Figure 4).
        """
        sums: dict[int, dict[str, float]] = {}
        counts: dict[int, int] = {}
        for req in self.requests:
            key = group_key(req)
            cell = sums.setdefault(key, dict.fromkeys(PHASE_BUCKETS, 0.0))
            for bucket in PHASE_BUCKETS:
                cell[bucket] += req.phase_time(phase, bucket)
            counts[key] = counts.get(key, 0) + 1
        return {
            key: {
                bucket: cell[bucket] / counts[key] for bucket in PHASE_BUCKETS
            }
            for key, cell in sums.items()
        }

    # ------------------------------------------------------------------
    # SLO views
    # ------------------------------------------------------------------
    def slo_report(
        self, slo: SLOConfig, include_ttfat: bool = False
    ) -> SLOReport:
        return evaluate_slo(self.requests, slo, include_ttfat=include_ttfat)

    def p99_transfer_latency(self) -> float | None:
        if not self.transfer_latencies_s:
            return None
        return percentile(self.transfer_latencies_s, 99.0)

    # ------------------------------------------------------------------
    # predictor-accuracy views
    # ------------------------------------------------------------------
    def _predictor_errors(self, dataset: str | None) -> list[float]:
        if dataset is not None:
            return list(self.predictor_abs_errors.get(dataset, ()))
        return [
            err
            for errors in self.predictor_abs_errors.values()
            for err in errors
        ]

    def predictor_error_mean(self, dataset: str | None = None) -> float | None:
        """Mean absolute reasoning-length prediction error (tokens)."""
        errors = self._predictor_errors(dataset)
        return mean(errors) if errors else None

    def predictor_error_percentile(
        self, pct: float, dataset: str | None = None
    ) -> float | None:
        """Percentile of the absolute prediction error (tokens)."""
        errors = self._predictor_errors(dataset)
        return percentile(errors, pct) if errors else None

    def predictor_error_rows(
        self, pct: float = 90.0
    ) -> list[tuple[str, int, float, float]]:
        """``(dataset, n, mean_abs_err, p<pct>_abs_err)`` per dataset."""
        return [
            (dataset, len(errors), mean(list(errors)),
             percentile(list(errors), pct))
            for dataset, errors in sorted(self.predictor_abs_errors.items())
            if errors
        ]

    # ------------------------------------------------------------------
    # rank-correlation views (ranking-based predictors)
    # ------------------------------------------------------------------
    def _rank_pairs(self, dataset: str | None) -> list[tuple[float, float]]:
        if dataset is not None:
            return list(self.predictor_rank_pairs.get(dataset, ()))
        return [
            pair
            for _, pairs in sorted(self.predictor_rank_pairs.items())
            for pair in pairs
        ]

    def rank_correlation(self, dataset: str | None = None) -> float | None:
        """Kendall tau-b between predicted scores and observed lengths.

        The metric a *ranking* predictor is judged by: the scheduler only
        needs the order of reasoning lengths, so tau — not absolute error
        — measures what placement actually consumes.  ``None`` with fewer
        than two scored observations (correlation undefined).

        The pooled (``dataset=None``) view concatenates per-dataset pair
        lists; cross-dataset score comparisons are meaningful because
        every predictor scores all datasets on one scale.
        """
        pairs = self._rank_pairs(dataset)
        return kendall_tau(pairs) if len(pairs) >= 2 else None

    def rank_correlation_rows(self) -> list[tuple[str, int, float]]:
        """``(dataset, n, kendall_tau)`` per dataset with >= 2 pairs."""
        return [
            (dataset, len(pairs), kendall_tau(list(pairs)))
            for dataset, pairs in sorted(self.predictor_rank_pairs.items())
            if len(pairs) >= 2
        ]


def collect(cluster, requests: list[Request] | None = None) -> RunMetrics:
    """Snapshot a cluster run (finished or mid-flight) into metrics."""
    reqs = requests if requests is not None else cluster.completed
    return RunMetrics(
        policy=cluster.policy_name,
        requests=list(reqs),
        throughput_tokens_per_s=cluster.throughput_tokens_per_s(),
        transfer_latencies_s=cluster.migrations.transfer_latencies(),
        predictor_abs_errors=cluster.policy.predictor_errors(),
        predictor_rank_pairs=cluster.policy.predictor_rank_pairs(),
        rejected=list(cluster.rejected),
        cancelled=list(cluster.cancelled),
        n_deferrals=cluster.n_deferrals,
    )
