"""SLO evaluation rules (Sections III-B and V-A).

Two variants mirror the paper:

* **Characterization (Figure 5)** — a request meets its answering SLO when
  its QoE, with the expected curve anchored at ``reasoning_end + TTFAT
  target``, is at least the threshold.  Both a late first answering token
  and a lagging stream cause failure.
* **Evaluation (Figures 11/13/15)** — reasoning lengths vary too much for
  a fixed TTFT target, so QoE is computed solely from TPOT (anchored at
  the first answering token) and TTFT is reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SLOConfig
from repro.metrics.qoe import qoe_for_request, qoe_with_ttfat


@dataclass(frozen=True)
class SLOReport:
    """Violation accounting over a set of finished requests."""

    n_requests: int
    n_violations: int
    qoe_scores: tuple[float, ...]

    @property
    def violation_rate(self) -> float:
        if self.n_requests == 0:
            return 0.0
        return self.n_violations / self.n_requests

    @property
    def attainment_rate(self) -> float:
        return 1.0 - self.violation_rate


def evaluate_slo(
    requests,
    slo: SLOConfig,
    include_ttfat: bool = False,
) -> SLOReport:
    """Count SLO violations under either QoE variant."""
    scores: list[float] = []
    violations = 0
    counted = 0
    for req in requests:
        if include_ttfat:
            score = qoe_with_ttfat(req, slo.tpot_target_s, slo.ttfat_target_s)
        else:
            score = qoe_for_request(req, slo.tpot_target_s)
        if score is None:
            continue
        counted += 1
        scores.append(score)
        if score < slo.qoe_threshold:
            violations += 1
    return SLOReport(
        n_requests=counted,
        n_violations=violations,
        qoe_scores=tuple(scores),
    )
