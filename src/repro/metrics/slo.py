"""SLO evaluation rules (Sections III-B and V-A).

Two variants mirror the paper:

* **Characterization (Figure 5)** — a request meets its answering SLO when
  its QoE, with the expected curve anchored at ``reasoning_end + TTFAT
  target``, is at least the threshold.  Both a late first answering token
  and a lagging stream cause failure.
* **Evaluation (Figures 11/13/15)** — reasoning lengths vary too much for
  a fixed TTFT target, so QoE is computed solely from TPOT (anchored at
  the first answering token) and TTFT is reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SLOConfig
from repro.metrics.qoe import qoe_for_request, qoe_with_ttfat


@dataclass(frozen=True)
class SLOReport:
    """Violation accounting over a set of requests.

    ``n_requests`` covers *every* request handed to :func:`evaluate_slo`,
    including the ``n_unscored`` ones that produced no QoE score (no
    answering token ever delivered, or no reasoning-end anchor for the
    TTFAT variant).  Unscored requests are counted as violations: a
    starved request cannot have met its SLO, and silently dropping it
    would let a policy *improve* its attainment rate by never answering.
    """

    n_requests: int
    n_violations: int
    qoe_scores: tuple[float, ...]
    n_unscored: int = 0

    @property
    def violation_rate(self) -> float:
        if self.n_requests == 0:
            return 0.0
        return self.n_violations / self.n_requests

    @property
    def attainment_rate(self) -> float:
        return 1.0 - self.violation_rate

    @property
    def mean_qoe(self) -> float | None:
        """Mean QoE over the scored requests (None when nothing scored)."""
        if not self.qoe_scores:
            return None
        return sum(self.qoe_scores) / len(self.qoe_scores)


def evaluate_slo(
    requests,
    slo: SLOConfig,
    include_ttfat: bool = False,
) -> SLOReport:
    """Count SLO violations under either QoE variant.

    Requests without a QoE score (never answered / unfinished) count as
    violations and are reported via :attr:`SLOReport.n_unscored`.
    """
    scores: list[float] = []
    violations = 0
    counted = 0
    unscored = 0
    for req in requests:
        if include_ttfat:
            score = qoe_with_ttfat(req, slo.tpot_target_s, slo.ttfat_target_s)
        else:
            score = qoe_for_request(req, slo.tpot_target_s)
        counted += 1
        if score is None:
            unscored += 1
            violations += 1
            continue
        scores.append(score)
        if score < slo.qoe_threshold:
            violations += 1
    return SLOReport(
        n_requests=counted,
        n_violations=violations,
        qoe_scores=tuple(scores),
        n_unscored=unscored,
    )
