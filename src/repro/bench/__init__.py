"""Microbenchmark suite: perf-trajectory tracking for the simulator.

``python -m repro.harness bench`` runs the suite and emits a versioned
``BENCH_<date>.json`` artifact so the event-loop throughput of the fig9
hot path — and the ROADMAP's heapq-vs-bucket-queue ``EventQueue``
question — can be tracked across commits.
"""

from repro.bench.suite import run_suite, write_bench_json

__all__ = ["run_suite", "write_bench_json"]
