"""Sharded-simulation scaling series for the benchmark suite.

Times :func:`repro.shard.run_sharded` on one synthetic workload at a
fixed ladder of ``(shards, workers)`` points so ``BENCH_<date>.json``
tracks what K-way partitioning buys:

* ``k1w1`` — the unsharded baseline (one engine, one process);
* ``k4w1`` — four sub-clusters driven serially in one process, which
  isolates the *algorithmic* effect of partitioning (smaller per-engine
  event queues and heaps) from parallelism;
* ``k4w4`` — four worker processes, the deployment the ISSUE targets;
  on a multi-core host this is where near-linear wall-clock speedup
  shows up, and ``requests_per_s_per_core`` is the honest
  efficiency figure either way (``cores`` records how many CPUs the
  run could actually use, so a single-core host does not report a
  fake 4x).

The workload deliberately uses a *light* token-length model rather than
AlpacaEval: scaling behaviour only emerges at request counts in the
hundreds of thousands, and AlpacaEval's ~570-token answer streams make
million-request runs memory-bound on the metrics, not the simulator.
The dataset lives at module level so worker processes can unpickle the
:class:`~repro.workload.trace.TraceConfig` that references it.
"""

from __future__ import annotations

import os
import time

from repro.config import ClusterConfig, InstanceConfig
from repro.workload.datasets import DatasetSpec, LengthSpec
from repro.workload.trace import TraceConfig

#: Light per-request token counts (vs AlpacaEval's ~60/558/567 means):
#: the simulator does the same scheduling work per request while the
#: per-request metrics footprint stays small enough for 1M+-request runs.
BENCH_LIGHT = DatasetSpec(
    name="bench-light",
    prompt=LengthSpec(mean=60.0, sigma=0.5, lo=8, hi=256),
    reasoning=LengthSpec(mean=96.0, sigma=0.6, lo=8, hi=512),
    answering=LengthSpec(mean=48.0, sigma=0.5, lo=8, hi=256),
)

#: The scaling ladder: (shards, workers) per timed entry.
SHARD_SERIES: tuple[tuple[int, int], ...] = ((1, 1), (4, 1), (4, 4))

#: Policy under test.  fcfs keeps the per-event cost low and constant so
#: the series measures the sharding infrastructure, not the scheduler.
SHARD_POLICY = "fcfs"


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def bench_shard_scaling(
    n_requests: int = 2000,
    rate_per_s: float = 150.0,
    seed: int = 11,
    series: tuple[tuple[int, int], ...] = SHARD_SERIES,
) -> list[dict]:
    """Time ``run_sharded`` across ``series``; return BENCH entries.

    Every point runs the identical workload spec — each worker
    re-synthesizes its own hash-partition of the trace, so the timed
    region covers trace synthesis, simulation, and the metrics merge
    (what a sharded run actually costs end to end).
    """
    from repro.shard import run_sharded

    trace = TraceConfig(
        dataset=BENCH_LIGHT,
        n_requests=n_requests,
        arrival_rate_per_s=rate_per_s,
        seed=seed,
    )
    cluster = ClusterConfig(
        n_instances=8,
        instance=InstanceConfig(kv_capacity_tokens=60000),
    )
    available = _available_cores()
    entries: list[dict] = []
    for shards, workers in series:
        start = time.perf_counter()
        metrics = run_sharded(
            trace,
            policy=SHARD_POLICY,
            config=cluster,
            shards=shards,
            workers=workers,
        )
        wall = time.perf_counter() - start
        completed = len(metrics.requests)
        rate = completed / wall if wall > 0 else 0.0
        cores = max(1, min(workers, shards, available))
        entries.append(
            {
                "name": f"shard.sim.{SHARD_POLICY}.k{shards}w{workers}",
                "shards": shards,
                "workers": workers,
                "cores": cores,
                "wall_s": wall,
                "requests": completed,
                "requests_per_s": rate,
                "requests_per_s_per_core": rate / cores,
            }
        )
    return entries
