"""EventQueue microbenchmark: heapq vs bucket queue on a real op stream.

The engine's hot loop is ``EventQueue.push``/``pop`` (one pop plus a
handful of pushes per simulated engine step).  Timing the queue on a
synthetic uniform stream would flatter whichever implementation matches
the synthetic distribution, so this module *records* the exact operation
sequence a Figure-9-style simulation issues and replays it against each
candidate:

* :class:`~repro.sim.events.EventQueue` — the production binary heap;
* :class:`~repro.sim.events.BucketEventQueue` — the calendar-queue
  candidate from the ROADMAP's "next 2-3x" question.

Replay drives ``push``/``pop``/``peek_time`` only; cancellation flags are
owned by instances mid-run and are not part of the recorded stream (lazily
deleted events appear as ordinary pops, which is how both implementations
treat them).
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.sim.events import BucketEventQueue, EventKind, EventQueue

#: One recorded op: ("push", time, kind) | ("pop",) | ("peek",).
Op = tuple


class RecordingEventQueue(EventQueue):
    """Production queue that journals every operation it serves."""

    def __init__(self) -> None:
        super().__init__()
        self.ops: list[Op] = []

    def push(self, time: float, kind: EventKind, payload: Any = None):
        self.ops.append(("push", time, kind))
        return super().push(time, kind, payload)

    def pop(self):
        self.ops.append(("pop",))
        return super().pop()

    def peek_time(self):
        self.ops.append(("peek",))
        return super().peek_time()


def record_ops(run_simulation: Callable[["RecordingEventQueue"], None]) -> list[Op]:
    """Journal the queue ops issued by one simulation.

    ``run_simulation(queue)`` must install ``queue`` into an engine and
    drive the run to completion.
    """
    queue = RecordingEventQueue()
    run_simulation(queue)
    return queue.ops


def replay_ops(ops: list[Op], queue) -> None:
    """Drive one queue implementation through a recorded op stream."""
    push = queue.push
    pop = queue.pop
    peek = queue.peek_time
    for op in ops:
        tag = op[0]
        if tag == "push":
            push(op[1], op[2])
        elif tag == "pop":
            pop()
        else:
            peek()


QUEUE_CANDIDATES: dict[str, Callable[[], object]] = {
    "heapq": EventQueue,
    "bucket": BucketEventQueue,
}


def bench_queue_replay(
    ops: list[Op], repeats: int = 3
) -> list[dict[str, float | int | str]]:
    """Best-of-``repeats`` replay wall time for every queue candidate."""
    rows = []
    for name, factory in QUEUE_CANDIDATES.items():
        best = float("inf")
        for _ in range(max(1, repeats)):
            queue = factory()
            start = time.perf_counter()
            replay_ops(ops, queue)
            best = min(best, time.perf_counter() - start)
        rows.append(
            {
                "name": f"eventqueue.{name}",
                "ops": len(ops),
                "best_wall_s": best,
                "ops_per_s": len(ops) / best if best > 0 else 0.0,
                "repeats": max(1, repeats),
            }
        )
    return rows
