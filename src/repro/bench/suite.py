"""The benchmark suite behind ``python -m repro.harness bench``.

Times the Figure 9 hot path — an AlpacaEval cluster simulation per policy
— and replays its recorded ``EventQueue`` op stream through each queue
candidate (:mod:`repro.bench.eventqueue`).  Results are printed as a table
and written as a versioned ``BENCH_<date>.json`` perf-trajectory artifact:

.. code-block:: json

    {
      "format": "pascal-bench",
      "version": 3,
      "created": "2026-07-31T12:00:00Z",
      "fingerprint": "<simulator code fingerprint>",
      "python": "3.12.3",
      "platform": "Linux-...",
      "config": {"n_requests": 240, "rate_per_s": 2.5, "seed": 11},
      "benchmarks": [
        {"name": "fig9.sim.fcfs", "wall_s": 0.2, "events": 1531,
         "events_per_s": 7600.0, "requests": 240,
         "requests_per_s": 1200.0, "epoch_coalescing": true},
        {"name": "fig9.sim.fcfs.noepoch", "wall_s": 0.7, "events": 48063,
         "events_per_s": 68000.0, "requests": 240,
         "requests_per_s": 340.0, "epoch_coalescing": false},
        {"name": "eventqueue.heapq", "ops": 160000,
         "best_wall_s": 0.05, "ops_per_s": 3200000.0, "repeats": 3}
      ],
      "profile": {
        "target": "fig9.sim.fcfs",
        "top": [
          {"func": "instance.py:310:maybe_start_step", "ncalls": 1531,
           "tottime_s": 0.04, "cumtime_s": 0.11}
        ]
      }
    }

Version 2 additions: every ``fig9.sim.*`` entry carries ``requests_per_s``
(the requests/s/core figure of merit — the suite is single-process, so
per-process is per-core) and ``epoch_coalescing``; each policy also gets a
``.noepoch`` twin timed with decode-epoch coalescing disabled, an in-file
A/B of the fast path against the pre-epoch stepping it replaced.

Version 3 adds the ``shard.sim.*`` scaling series (:mod:`repro.bench.shard`):
``run_sharded`` timed at a (shards, workers) ladder on a light synthetic
workload, each entry carrying ``requests_per_s`` plus
``requests_per_s_per_core`` (normalized by the cores the run could
actually use, so single-core hosts report honest numbers).  Sized by
``shard_requests`` (``--shard-requests``; 0 skips the series) — committed
artifacts use 1M+ requests, where partitioned heaps and event queues
separate from the monolithic engine.  The
optional ``profile`` section (``bench --profile``) holds the top-N
cumulative-time rows of a cProfile pass over a dedicated (untimed) fcfs
run, so the next optimization round is evidence-led.

The workload is deterministic (fixed seed, fixed arrival rate — no
capacity probe, so the benchmark measures the simulator, not the
calibration), which makes ``BENCH_*.json`` files comparable across
commits of equal config.
"""

from __future__ import annotations

import cProfile
import json
import os
import platform
import pstats
import time

from repro.bench.eventqueue import bench_queue_replay, record_ops
from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, InstanceConfig
from repro.harness.cache import code_fingerprint
from repro.workload.datasets import ALPACA_EVAL
from repro.workload.trace import TraceConfig, build_trace

BENCH_FORMAT = "pascal-bench"
BENCH_VERSION = 3

#: Policies timed on the fig9 hot path: the paper's baseline and PASCAL.
BENCH_POLICIES = ("fcfs", "pascal")

#: Rows kept from a cProfile pass (sorted by cumulative time).
PROFILE_TOP_N = 15


def _bench_cluster(
    n_instances: int = 8, epoch_coalescing: bool = True
) -> ClusterConfig:
    instance = InstanceConfig(
        kv_capacity_tokens=60000, epoch_coalescing=epoch_coalescing
    )
    return ClusterConfig(n_instances=n_instances, instance=instance)


def _run_fig9_sim(
    policy: str,
    n_requests: int,
    rate_per_s: float,
    seed: int,
    epoch_coalescing: bool = True,
) -> dict:
    """One timed Figure-9-style run (fixed rate; no calibration probe)."""
    trace = build_trace(
        TraceConfig(
            dataset=ALPACA_EVAL,
            n_requests=n_requests,
            arrival_rate_per_s=rate_per_s,
            seed=seed,
        )
    )
    cluster = Cluster(
        _bench_cluster(epoch_coalescing=epoch_coalescing), policy=policy
    )
    start = time.perf_counter()
    cluster.run_trace(trace)
    wall = time.perf_counter() - start
    return {
        "policy": policy,
        "wall_s": wall,
        "events": cluster.engine.events_processed,
        "events_per_s": (
            cluster.engine.events_processed / wall if wall > 0 else 0.0
        ),
        "requests": len(cluster.completed),
        "requests_per_s": len(cluster.completed) / wall if wall > 0 else 0.0,
        "epoch_coalescing": epoch_coalescing,
    }


def profile_fig9(
    n_requests: int,
    rate_per_s: float,
    seed: int,
    top_n: int = PROFILE_TOP_N,
) -> dict:
    """cProfile the fcfs fig9 run; return the BENCH ``profile`` section.

    A dedicated run, separate from the timed entries — the profiler's
    tracing overhead would contaminate the wall-clock trajectory.
    """
    trace = build_trace(
        TraceConfig(
            dataset=ALPACA_EVAL,
            n_requests=n_requests,
            arrival_rate_per_s=rate_per_s,
            seed=seed,
        )
    )
    cluster = Cluster(_bench_cluster(), policy="fcfs")
    profiler = cProfile.Profile()
    profiler.enable()
    cluster.run_trace(trace)
    profiler.disable()
    stats = pstats.Stats(profiler)
    rows = []
    ranked = sorted(
        stats.stats.items(), key=lambda kv: kv[1][3], reverse=True
    )
    for (filename, lineno, name), (_, ncalls, tottime, cumtime, _) in ranked[
        :top_n
    ]:
        rows.append(
            {
                "func": f"{os.path.basename(filename)}:{lineno}:{name}",
                "ncalls": ncalls,
                "tottime_s": round(tottime, 6),
                "cumtime_s": round(cumtime, 6),
            }
        )
    return {"target": "fig9.sim.fcfs", "top": rows}


def run_suite(
    n_requests: int = 240,
    rate_per_s: float = 2.5,
    seed: int = 11,
    repeats: int = 3,
    profile: bool = False,
    epoch_coalescing: bool = True,
    shard_requests: int = 2000,
) -> dict:
    """Run every benchmark and return the BENCH JSON document.

    ``epoch_coalescing=False`` (the ``--no-epoch`` escape hatch) times the
    primary entries with the fast path off; when it is on (the default)
    each policy additionally gets a ``.noepoch`` baseline entry so every
    artifact carries its own fast-path A/B.
    """
    benchmarks: list[dict] = []
    for policy in BENCH_POLICIES:
        variants = [(f"fig9.sim.{policy}", epoch_coalescing)]
        if epoch_coalescing:
            variants.append((f"fig9.sim.{policy}.noepoch", False))
        for name, coalesce in variants:
            run = _run_fig9_sim(
                policy, n_requests, rate_per_s, seed, epoch_coalescing=coalesce
            )
            benchmarks.append(
                {
                    "name": name,
                    "wall_s": run["wall_s"],
                    "events": run["events"],
                    "events_per_s": run["events_per_s"],
                    "requests": run["requests"],
                    "requests_per_s": run["requests_per_s"],
                    "epoch_coalescing": coalesce,
                }
            )

    # Record the exact op stream the fcfs run issues, then replay it
    # through each queue candidate (heapq vs bucket).
    def drive(queue) -> None:
        trace = build_trace(
            TraceConfig(
                dataset=ALPACA_EVAL,
                n_requests=n_requests,
                arrival_rate_per_s=rate_per_s,
                seed=seed,
            )
        )
        cluster = Cluster(_bench_cluster(), policy="fcfs")
        cluster.engine.queue = queue
        cluster.run_trace(trace)

    ops = record_ops(drive)
    benchmarks.extend(bench_queue_replay(ops, repeats=repeats))

    if shard_requests > 0:
        from repro.bench.shard import bench_shard_scaling

        benchmarks.extend(bench_shard_scaling(n_requests=shard_requests))

    doc = {
        "format": BENCH_FORMAT,
        "version": BENCH_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "fingerprint": code_fingerprint(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "config": {
            "n_requests": n_requests,
            "rate_per_s": rate_per_s,
            "seed": seed,
            "repeats": repeats,
            "epoch_coalescing": epoch_coalescing,
            "shard_requests": shard_requests,
        },
        "benchmarks": benchmarks,
    }
    if profile:
        doc["profile"] = profile_fig9(n_requests, rate_per_s, seed)
    return doc


def render_suite(result: dict) -> str:
    """The BENCH document as a printable table."""
    from repro.harness.report import render_table

    rows = []
    for bench in result["benchmarks"]:
        if bench["name"].startswith("eventqueue."):
            rows.append(
                [
                    bench["name"],
                    bench["best_wall_s"],
                    bench["ops"],
                    bench["ops_per_s"],
                ]
            )
        elif bench["name"].startswith("shard.sim."):
            # Scaling entries time whole requests, not engine events.
            rows.append(
                [
                    bench["name"],
                    bench["wall_s"],
                    bench["requests"],
                    bench["requests_per_s_per_core"],
                ]
            )
        else:
            rows.append(
                [
                    bench["name"],
                    bench["wall_s"],
                    bench["events"],
                    bench["events_per_s"],
                ]
            )
    table = render_table(
        ["benchmark", "wall_s", "events/ops/reqs", "rate_per_s"],
        rows,
        title=f"[bench] simulator perf trajectory "
        f"(fingerprint {result['fingerprint']})",
    )
    profile = result.get("profile")
    if profile:
        prof_rows = [
            [row["func"], row["ncalls"], row["tottime_s"], row["cumtime_s"]]
            for row in profile["top"]
        ]
        table += "\n" + render_table(
            ["function", "ncalls", "tottime_s", "cumtime_s"],
            prof_rows,
            title=f"[bench] cProfile top-{len(prof_rows)} by cumulative "
            f"time ({profile['target']})",
        )
    return table


def write_bench_json(result: dict, out: str | os.PathLike | None = None) -> str:
    """Persist the BENCH document; returns the path written.

    ``out`` may be a file path or a directory; a directory (or None,
    meaning ``benchmarks/results`` when present, else the CWD) gets the
    dated ``BENCH_<YYYY-MM-DD>.json`` name.
    """
    if out is None:
        out = (
            os.path.join("benchmarks", "results")
            if os.path.isdir(os.path.join("benchmarks", "results"))
            else "."
        )
    out = os.fspath(out)
    if os.path.isdir(out):
        date = time.strftime("%Y-%m-%d", time.gmtime())
        out = os.path.join(out, f"BENCH_{date}.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return out
