"""The benchmark suite behind ``python -m repro.harness bench``.

Times the Figure 9 hot path — an AlpacaEval cluster simulation per policy
— and replays its recorded ``EventQueue`` op stream through each queue
candidate (:mod:`repro.bench.eventqueue`).  Results are printed as a table
and written as a versioned ``BENCH_<date>.json`` perf-trajectory artifact:

.. code-block:: json

    {
      "format": "pascal-bench",
      "version": 1,
      "created": "2026-07-31T12:00:00Z",
      "fingerprint": "<simulator code fingerprint>",
      "python": "3.12.3",
      "platform": "Linux-...",
      "config": {"n_requests": 240, "rate_per_s": 2.5, "seed": 11},
      "benchmarks": [
        {"name": "fig9.sim.fcfs", "wall_s": 1.9, "events": 81234,
         "events_per_s": 42000.0, "requests": 240},
        {"name": "eventqueue.heapq", "ops": 160000,
         "best_wall_s": 0.05, "ops_per_s": 3200000.0, "repeats": 3}
      ]
    }

The workload is deterministic (fixed seed, fixed arrival rate — no
capacity probe, so the benchmark measures the simulator, not the
calibration), which makes ``BENCH_*.json`` files comparable across
commits of equal config.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro.bench.eventqueue import bench_queue_replay, record_ops
from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, InstanceConfig
from repro.harness.cache import code_fingerprint
from repro.workload.datasets import ALPACA_EVAL
from repro.workload.trace import TraceConfig, build_trace

BENCH_FORMAT = "pascal-bench"
BENCH_VERSION = 1

#: Policies timed on the fig9 hot path: the paper's baseline and PASCAL.
BENCH_POLICIES = ("fcfs", "pascal")


def _bench_cluster(n_instances: int = 8) -> ClusterConfig:
    instance = InstanceConfig(kv_capacity_tokens=60000)
    return ClusterConfig(n_instances=n_instances, instance=instance)


def _run_fig9_sim(
    policy: str,
    n_requests: int,
    rate_per_s: float,
    seed: int,
) -> dict:
    """One timed Figure-9-style run (fixed rate; no calibration probe)."""
    trace = build_trace(
        TraceConfig(
            dataset=ALPACA_EVAL,
            n_requests=n_requests,
            arrival_rate_per_s=rate_per_s,
            seed=seed,
        )
    )
    cluster = Cluster(_bench_cluster(), policy=policy)
    start = time.perf_counter()
    cluster.run_trace(trace)
    wall = time.perf_counter() - start
    return {
        "policy": policy,
        "wall_s": wall,
        "events": cluster.engine.events_processed,
        "events_per_s": (
            cluster.engine.events_processed / wall if wall > 0 else 0.0
        ),
        "requests": len(cluster.completed),
    }


def run_suite(
    n_requests: int = 240,
    rate_per_s: float = 2.5,
    seed: int = 11,
    repeats: int = 3,
) -> dict:
    """Run every benchmark and return the BENCH JSON document."""
    benchmarks: list[dict] = []
    for policy in BENCH_POLICIES:
        run = _run_fig9_sim(policy, n_requests, rate_per_s, seed)
        benchmarks.append(
            {
                "name": f"fig9.sim.{policy}",
                "wall_s": run["wall_s"],
                "events": run["events"],
                "events_per_s": run["events_per_s"],
                "requests": run["requests"],
            }
        )

    # Record the exact op stream the fcfs run issues, then replay it
    # through each queue candidate (heapq vs bucket).
    def drive(queue) -> None:
        trace = build_trace(
            TraceConfig(
                dataset=ALPACA_EVAL,
                n_requests=n_requests,
                arrival_rate_per_s=rate_per_s,
                seed=seed,
            )
        )
        cluster = Cluster(_bench_cluster(), policy="fcfs")
        cluster.engine.queue = queue
        cluster.run_trace(trace)

    ops = record_ops(drive)
    benchmarks.extend(bench_queue_replay(ops, repeats=repeats))

    return {
        "format": BENCH_FORMAT,
        "version": BENCH_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "fingerprint": code_fingerprint(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "config": {
            "n_requests": n_requests,
            "rate_per_s": rate_per_s,
            "seed": seed,
            "repeats": repeats,
        },
        "benchmarks": benchmarks,
    }


def render_suite(result: dict) -> str:
    """The BENCH document as a printable table."""
    from repro.harness.report import render_table

    rows = []
    for bench in result["benchmarks"]:
        if bench["name"].startswith("eventqueue."):
            rows.append(
                [
                    bench["name"],
                    bench["best_wall_s"],
                    bench["ops"],
                    bench["ops_per_s"],
                ]
            )
        else:
            rows.append(
                [
                    bench["name"],
                    bench["wall_s"],
                    bench["events"],
                    bench["events_per_s"],
                ]
            )
    return render_table(
        ["benchmark", "wall_s", "events/ops", "rate_per_s"],
        rows,
        title=f"[bench] simulator perf trajectory "
        f"(fingerprint {result['fingerprint']})",
    )


def write_bench_json(result: dict, out: str | os.PathLike | None = None) -> str:
    """Persist the BENCH document; returns the path written.

    ``out`` may be a file path or a directory; a directory (or None,
    meaning ``benchmarks/results`` when present, else the CWD) gets the
    dated ``BENCH_<YYYY-MM-DD>.json`` name.
    """
    if out is None:
        out = (
            os.path.join("benchmarks", "results")
            if os.path.isdir(os.path.join("benchmarks", "results"))
            else "."
        )
    out = os.fspath(out)
    if os.path.isdir(out):
        date = time.strftime("%Y-%m-%d", time.gmtime())
        out = os.path.join(out, f"BENCH_{date}.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return out
