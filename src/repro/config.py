"""Configuration objects for the PASCAL reproduction.

Every experiment knob lives here so that harness code and tests construct
scenarios from plain dataclasses instead of scattered constants.  The default
values model the paper's evaluation platform: DeepSeek-R1-Distill-Qwen-32B
served on NVIDIA H100 96 GB instances connected by a 100 Gbps fabric, with
CPU DRAM reachable over PCIe 5.0 (Section V-A of the paper).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ModelConfig:
    """Geometry of the served model, used by the performance model.

    Defaults describe DeepSeek-R1-Distill-Qwen-32B (Qwen2.5-32B geometry):
    64 transformer layers, 40 query heads, 8 KV heads (GQA), head dim 128.
    """

    name: str = "deepseek-r1-distill-qwen-32b"
    n_params: float = 32.8e9
    n_layers: int = 64
    hidden_size: int = 5120
    n_heads: int = 40
    n_kv_heads: int = 8
    head_dim: int = 128
    dtype_bytes: int = 2
    #: Token id emitted at the end of the reasoning phase (``</think>``).
    end_of_think_token: str = "</think>"

    @property
    def weight_bytes(self) -> float:
        """Bytes of model weights resident on each instance."""
        return self.n_params * self.dtype_bytes

    @property
    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes required per cached token (keys + values)."""
        return 2 * self.n_layers * self.n_kv_heads * self.head_dim * self.dtype_bytes


@dataclass(frozen=True)
class GPUConfig:
    """One accelerator, roofline-style.  Defaults model an H100 SXM 96 GB."""

    name: str = "h100-96gb"
    hbm_bytes: float = 96e9
    hbm_bandwidth: float = 3.35e12
    peak_flops: float = 9.9e14
    #: Achievable fraction of peak FLOPs during prefill (compute bound).
    mfu_prefill: float = 0.55
    #: Achievable fraction of peak HBM bandwidth during decode (memory bound).
    bw_efficiency: float = 0.8
    #: Effective host<->device bandwidth for KV swap (PCIe 5.0 x16).
    pcie_bandwidth: float = 5.0e10
    #: Fraction of HBM reserved for non-KV use (activations, fragmentation).
    reserve_fraction: float = 0.08

    def kv_capacity_tokens(self, model: ModelConfig) -> int:
        """Tokens of KV cache that fit after weights and the reserve."""
        usable = self.hbm_bytes * (1.0 - self.reserve_fraction) - model.weight_bytes
        if usable <= 0:
            return 0
        return int(usable // model.kv_bytes_per_token)


@dataclass(frozen=True)
class SLOConfig:
    """Service-level objectives (Section II-C / V-A).

    The answering phase is judged by QoE computed from TPOT starting at the
    first answering token; a request violates its SLO when QoE < 0.95.
    TTFAT (time from end of reasoning to the first answering token) has its
    own near-instantaneous target used in the characterization experiments.
    """

    tpot_target_s: float = 0.100
    ttfat_target_s: float = 0.25
    qoe_threshold: float = 0.95

    @property
    def expected_tokens_per_s(self) -> float:
        """User-expected digestion rate implied by the TPOT target."""
        return 1.0 / self.tpot_target_s


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs shared by the intra-instance schedulers (Section V-A)."""

    #: Round-robin token quantum for RR and for each PASCAL queue.
    token_quantum: int = 500
    #: Reasoning requests whose generated-token count exceeds this are
    #: demoted to the low-priority (answering) queue (Section IV-C).
    demotion_threshold_tokens: int = 5000
    #: Maximum requests decodable in one batch (vLLM ``max_num_seqs``).
    max_batch_size: int = 256
    #: Token budget for a prefill step (vLLM ``max_num_batched_tokens``).
    max_prefill_tokens: int = 8192
    #: Extra GPU-token headroom required before admitting a new request.
    admission_watermark_tokens: int = 0


@dataclass(frozen=True)
class InstanceConfig:
    """One serving instance: a model replica bound to one GPU."""

    model: ModelConfig = field(default_factory=ModelConfig)
    gpu: GPUConfig = field(default_factory=GPUConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: Override for the GPU KV capacity in tokens (None = derive from gpu).
    kv_capacity_tokens: int | None = None
    #: CPU-side KV pool for swapped-out requests (256 GB DDR5 by default).
    cpu_kv_bytes: float = 256e9
    #: Coalesce clean decode steps into multi-token epochs (one
    #: ``STEP_COMPLETE`` event per epoch, per-token timestamps computed
    #: analytically).  Equivalent to single-stepping — see
    #: ``repro.serving.instance`` — and on by default; ``False`` forces
    #: one event per token (the ``--no-epoch`` A/B escape hatch).
    epoch_coalescing: bool = True

    def gpu_kv_tokens(self) -> int:
        """GPU KV capacity in tokens, honouring the explicit override."""
        if self.kv_capacity_tokens is not None:
            return self.kv_capacity_tokens
        return self.gpu.kv_capacity_tokens(self.model)

    def cpu_kv_tokens(self) -> int:
        """CPU KV pool capacity in tokens."""
        return int(self.cpu_kv_bytes // self.model.kv_bytes_per_token)

    def with_kv_capacity(self, tokens: int) -> "InstanceConfig":
        """Copy of this config with an explicit GPU KV capacity (tokens)."""
        return dataclasses.replace(self, kv_capacity_tokens=tokens)


@dataclass(frozen=True)
class PoolSpec:
    """Heterogeneous instance-pool declaration (tiered serving).

    Policies that support per-instance scheduler composition read this spec
    from ``ClusterConfig.extensions.pool``: the lowest-``iid`` instances
    form an FCFS "express" tier reserved for requests predicted to reason
    briefly, the rest a "standard" tier running the policy's full
    scheduler.  Single-tier policies ignore it.
    """

    #: Instances reserved for the express tier (clamped so the standard
    #: tier keeps at least one instance; 0 disables tiering).
    express_instances: int = 2
    #: Route to the express tier when the predicted total reasoning length
    #: is at or below this many tokens.  The default sits between the chat
    #: dataset means (~560-970) and the problem-solving means (~750-2680),
    #: so mixed workloads actually split.
    express_threshold_tokens: int = 800

    def express_count(self, n_instances: int) -> int:
        """Express-tier size for a pool of ``n_instances``."""
        if n_instances <= 1:
            return 0
        return max(0, min(self.express_instances, n_instances - 1))


@dataclass(frozen=True)
class ExtensionPolicyConfig:
    """Knobs for the extension policies (beyond the paper's comparison set).

    ``slo-least-load``, ``length-predictive`` and ``tiered-express`` live in
    :mod:`repro.core.extensions`; their tunables are centralized here so
    harness code and tests construct scenarios from plain dataclasses.
    """

    #: Online reasoning-length predictor variant: ``"ewma"`` (flat
    #: per-dataset EWMA of observed lengths) or ``"bucketed-ewma"``
    #: (per-dataset geometric length buckets with EWMA-decayed weights,
    #: predicting the weighted-median bucket — tracks the lognormal
    #: body instead of being dragged by its tail, which is what the flat
    #: EWMA's absolute error pays for on GPQA-like datasets).
    predictor: str = "ewma"
    #: EWMA smoothing factor of the online reasoning-length predictor.
    predictor_alpha: float = 0.25
    #: Predictor prior for a dataset with no observations yet (tokens).
    predictor_prior_tokens: int = 600
    #: ``slo-least-load``: also migrate at phase boundaries (False pins
    #: every request to its arrival instance, like the baselines).
    least_load_migration: bool = True
    #: ``slo-least-load``: weight load by pending decode tokens (the
    #: monitor's token-denominated signal) instead of live request count.
    least_load_weighted: bool = False
    #: Heterogeneous pool layout consumed by tier-aware policies.
    pool: PoolSpec = field(default_factory=PoolSpec)
    #: ``speculative-replace``: re-arrival delay for speculatively
    #: deferred arrivals (seconds in the waiting room per deferral).
    speculative_defer_s: float = 0.4
    #: ``speculative-replace``: deferral budget per request; 0 disables
    #: speculative deferral entirely (no admission gate is installed).
    speculative_max_defers: int = 3
    #: ``speculative-replace``: a dataset with fewer observed reasoning
    #: lengths than this is *rank-uncertain* — its arrivals wait for the
    #: predictor to tighten (cold-start deferral).
    speculative_min_observations: int = 8
    #: ``speculative-replace``: the cluster counts as pressured when
    #: every instance's pending-decode-token backlog (the monitor
    #: signal) is at or above this.
    speculative_pressure_tokens: int = 4000
    #: ``speculative-replace``: predicted reasoning lengths at or above
    #: this are "long" — deferred under pressure, and demotion victims.
    speculative_long_tokens: int = 1200
    #: ``speculative-replace``: demote the predicted-longest in-flight
    #: reasoning request on a pressured placement target (False turns
    #: the preemption mechanism off).
    speculative_preempt: bool = True


@dataclass(frozen=True)
class FabricConfig:
    """Inter-instance interconnect used for KV-cache migration."""

    #: Per-NIC bandwidth; the paper's cluster uses a 100 Gbps fabric.
    link_bandwidth: float = 100e9 / 8
    #: Fixed per-transfer setup latency (connection + metadata).
    base_latency_s: float = 0.002

    def transfer_seconds(self, n_bytes: float) -> float:
        """Serialization delay for one KV transfer on an idle link."""
        return self.base_latency_s + n_bytes / self.link_bandwidth


@dataclass(frozen=True)
class ClusterConfig:
    """The full serving deployment (Section V-A: eight H100 instances)."""

    n_instances: int = 8
    instance: InstanceConfig = field(default_factory=InstanceConfig)
    fabric: FabricConfig = field(default_factory=FabricConfig)
    slo: SLOConfig = field(default_factory=SLOConfig)
    extensions: ExtensionPolicyConfig = field(
        default_factory=ExtensionPolicyConfig
    )

    def with_instance(self, instance: InstanceConfig) -> "ClusterConfig":
        """Copy of this config with a replacement per-instance config."""
        return dataclasses.replace(self, instance=instance)


DEFAULT_MODEL = ModelConfig()
DEFAULT_GPU = GPUConfig()
DEFAULT_SLO = SLOConfig()
