"""One serving instance: a model replica bound to one GPU.

The instance executes *engine steps* (continuous batching, Section II-B):
each step either prefills a group of admitted prompts or decodes one token
for every request in the running batch.  Between steps the intra-instance
scheduler may recompute GPU residency — admitting, preempting (KV swap to
CPU over PCIe) or resuming requests.

Hot-loop discipline: the batch formed by the scheduler is *reused* across
steps until something scheduling-relevant happens (arrival, completion,
phase transition, quantum expiry, migration, or the KV pool running out of
growth room).  Clean steps therefore cost O(batch size), which is what
makes cluster-scale experiments tractable in pure Python.
"""

from __future__ import annotations

from typing import Callable

from repro.config import InstanceConfig
from repro.memory.blocks import KVPool, OutOfMemoryError
from repro.perfmodel.analytical import PerfModel
from repro.schedulers.base import IntraScheduler, StepKind, StepPlan
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventKind
from repro.workload.request import Phase, ReqState, Request

#: Callback signatures the cluster wires up.
TransitionHook = Callable[[Request, "ServingInstance", float], None]
CompletionHook = Callable[[Request, float], None]


class ServingInstance:
    """Continuous-batching execution engine for one GPU instance."""

    def __init__(
        self,
        iid: int,
        config: InstanceConfig,
        perf: PerfModel,
        engine: SimulationEngine,
        scheduler: IntraScheduler,
    ):
        self.iid = iid
        self.config = config
        self.perf = perf
        self.engine = engine
        self.scheduler = scheduler
        self.pool = KVPool(
            gpu_capacity_tokens=config.gpu_kv_tokens(),
            cpu_capacity_tokens=config.cpu_kv_tokens(),
        )
        self.requests: set[Request] = set()
        self.busy = False
        self.overhead_s = 0.0
        self._dirty = True
        self._plan: StepPlan | None = None

        #: Wired by the cluster; default no-ops keep the instance standalone.
        self.on_transition: TransitionHook = lambda req, inst, now: None
        self.on_complete: CompletionHook = lambda req, now: None
        #: Fired once per request, at its first *answering* token (the
        #: paper's TTFT milestone); feeds the session lifecycle stream.
        self.on_first_token: CompletionHook = lambda req, now: None

        #: Optional shared rid -> [token time] log (timeline tooling).
        self.token_log: dict[int, list[float]] | None = None

        # counters for throughput/utilization reporting
        self.busy_time_s = 0.0
        self.decode_steps = 0
        self.prefill_steps = 0
        self.reforms = 0
        self.tokens_generated = 0
        self.swap_out_tokens = 0
        self.swap_in_tokens = 0

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def admit(self, req: Request, now: float) -> None:
        """A new request was routed here by the instance-level scheduler."""
        req.instance_id = self.iid
        self.requests.add(req)
        self.scheduler.on_admit(req, now)
        self.mark_dirty()
        self.maybe_start_step(now)

    def accept_migrated(self, req: Request, now: float) -> None:
        """A phase-transitioned request's KV cache finished arriving."""
        req.instance_id = self.iid
        tokens = req.full_kv_tokens
        on_gpu = self.pool.can_allocate_gpu(tokens)
        self.pool.allocate(req, tokens, on_gpu=on_gpu)
        req.set_state(ReqState.QUEUED if on_gpu else ReqState.PREEMPTED, now)
        self.requests.add(req)
        self.scheduler.on_admit(req, now)
        self.mark_dirty()
        self.maybe_start_step(now)

    def depart(self, req: Request, now: float) -> None:
        """The request is migrating away; KV is released by the migration
        manager once the transfer lands."""
        req.set_state(ReqState.MIGRATING, now)
        self.requests.discard(req)
        self.mark_dirty()

    def mark_dirty(self) -> None:
        self._dirty = True

    # ------------------------------------------------------------------
    # residency mechanics (called by schedulers during form_batch)
    # ------------------------------------------------------------------
    def do_allocate(self, req: Request, now: float) -> None:
        """First admission to GPU memory (prompt KV reservation)."""
        self.pool.allocate(req, req.full_kv_tokens, on_gpu=True)
        if req.skip_prefill and not req.prefill_done:
            # Figure 5 workload: the KV exists already; no prefill compute.
            req.prefill_done = True
            req.prefill_end_t = now

    def do_swap_out(self, req: Request, now: float) -> None:
        tokens = self.pool.swap_out(req)
        self.overhead_s += self.perf.swap_seconds(tokens)
        self.swap_out_tokens += tokens
        req.set_state(ReqState.PREEMPTED, now)

    def do_swap_in(self, req: Request, now: float) -> None:
        tokens = self.pool.swap_in(req)
        self.overhead_s += self.perf.swap_seconds(tokens)
        self.swap_in_tokens += tokens
        req.set_state(ReqState.QUEUED, now)

    # ------------------------------------------------------------------
    # census used by the instance-level scheduler
    # ------------------------------------------------------------------
    def pending_kv_tokens(self) -> int:
        """Prospective KV demand of admitted-but-unallocated requests.

        Between an arrival and its first ``form_batch`` the request holds no
        pool blocks yet; a router that ignored this in-flight demand would
        dogpile simultaneous arrivals onto whichever instance reports the
        smallest allocated footprint.
        """
        return sum(
            r.full_kv_tokens
            for r in self.requests
            if not r.finished and not self.pool.holds(r)
        )

    def total_kv_tokens(self) -> int:
        """``m_i``: total KV footprint, GPU plus CPU plus queued demand
        (Algorithm 1's load proxy)."""
        return self.pool.total_kv_tokens() + self.pending_kv_tokens()

    def gpu_free_tokens(self) -> int:
        return self.pool.gpu_free_tokens()

    def live_requests(self) -> list[Request]:
        return [r for r in self.requests if not r.finished]

    # ------------------------------------------------------------------
    # step loop
    # ------------------------------------------------------------------
    def maybe_start_step(self, now: float) -> None:
        """Begin the next engine step unless one is already in flight."""
        if self.busy:
            return
        plan = self._plan
        if self._dirty or plan is None:
            plan = self.scheduler.form_batch(self, now)
            self._plan = plan
            self._dirty = False
            self.reforms += 1
        elif plan.kind == StepKind.DECODE and not self._growth_feasible(plan):
            plan = self.scheduler.form_batch(self, now)
            self._plan = plan
            self._dirty = False
            self.reforms += 1

        if plan.kind == StepKind.IDLE or not plan.requests:
            self._check_livelock(now)
            return

        # Reserve this step's tokens up front so concurrent migrations
        # cannot consume the blocks mid-step.
        for req in plan.requests:
            self.pool.grow(req, 1)
            if req.state != ReqState.RUNNING:
                req.set_state(ReqState.RUNNING, now)
            elif req.in_answering and req.answer_sched_t is None:
                # Phase flipped mid-batch and the request kept its slot:
                # its answering service starts with this step.
                req.answer_sched_t = now

        if plan.kind == StepKind.PREFILL:
            latency = self.perf.prefill_seconds(plan.prefill_tokens)
        else:
            kv_total = sum(r.kv_tokens for r in plan.requests)
            latency = self.perf.decode_step_seconds(len(plan.requests), kv_total)
        latency += self.overhead_s
        self.overhead_s = 0.0
        self.busy = True
        self.busy_time_s += latency
        self.engine.schedule_in(latency, EventKind.STEP_COMPLETE, self)

    def on_step_complete(self, now: float) -> None:
        """Finish the in-flight step: emit tokens, react to milestones."""
        self.busy = False
        plan = self._plan
        if plan is None:  # pragma: no cover - defensive
            raise RuntimeError(f"instance {self.iid}: step completed w/o plan")
        if plan.kind == StepKind.PREFILL:
            self.prefill_steps += 1
            for req in plan.requests:
                req.prefill_done = True
                req.prefill_end_t = now
                self._emit_token(req, now)
            self.mark_dirty()
        else:
            self.decode_steps += 1
            for req in plan.requests:
                self._emit_token(req, now)
        self.maybe_start_step(now)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _emit_token(self, req: Request, now: float) -> None:
        was_reasoning = req.phase == Phase.REASONING
        awaiting_first_answer = req.first_answer_t is None
        req.record_token(now)
        self.tokens_generated += 1
        if self.token_log is not None:
            self.token_log.setdefault(req.rid, []).append(now)
        if awaiting_first_answer and req.first_answer_t is not None:
            # Fired before any completion hook: a one-token answer reaches
            # its TTFT milestone and finishes on the same token.
            self.on_first_token(req, now)
        if req.finished:
            self.pool.release(req)
            self.requests.discard(req)
            self.mark_dirty()
            self.on_complete(req, now)
            return
        if was_reasoning and req.phase == Phase.ANSWERING:
            # The end-of-think token was just produced: phase boundary.
            self.mark_dirty()
            self.on_transition(req, self, now)
            if req.state == ReqState.MIGRATING:
                return
        quantum = self.scheduler.quantum_tokens
        if quantum is not None and req.quantum_used >= quantum:
            self.scheduler.on_quantum_expired(req, now)
            self.mark_dirty()

    def _growth_feasible(self, plan: StepPlan) -> bool:
        """Can every batched request take one more token without a reform?"""
        crossings = sum(
            1
            for r in plan.requests
            if r.kv_tokens % self.pool.block_size == 0
        )
        return crossings <= self.pool.gpu_free_blocks()

    def _check_livelock(self, now: float) -> None:
        live = self.live_requests()
        if not live:
            return
        movable = [r for r in live if r.state != ReqState.MIGRATING]
        if movable and self.pool.gpu_used_blocks == 0:
            biggest = max(r.full_kv_tokens for r in movable)
            raise OutOfMemoryError(
                f"instance {self.iid}: no request fits in an empty GPU pool "
                f"(largest footprint {biggest} tokens vs capacity "
                f"{self.pool.gpu_capacity_blocks * self.pool.block_size}); "
                "the workload exceeds single-request capacity"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServingInstance(iid={self.iid}, live={len(self.requests)}, "
            f"busy={self.busy}, kv={self.pool.gpu_used_blocks}blk)"
        )
