"""One serving instance: a model replica bound to one GPU.

The instance executes *engine steps* (continuous batching, Section II-B):
each step either prefills a group of admitted prompts or decodes one token
for every request in the running batch.  Between steps the intra-instance
scheduler may recompute GPU residency — admitting, preempting (KV swap to
CPU over PCIe) or resuming requests.

Hot-loop discipline: the batch formed by the scheduler is *reused* across
steps until something scheduling-relevant happens (arrival, completion,
phase transition, quantum expiry, migration, or the KV pool running out of
growth room).  Clean steps therefore cost O(batch size), which is what
makes cluster-scale experiments tractable in pure Python.

**Decode-epoch coalescing.**  A clean decode plan is deterministic for a
provable horizon: nothing observable changes until some batched request
reaches a milestone (phase flip, completion, quantum expiry, its first
answering token) or cumulative block-boundary crossings exhaust the free
GPU pool.  Instead of paying one ``STEP_COMPLETE`` event per token, the
instance schedules a single event at the horizon's end and computes every
intermediate step time analytically (:class:`_DecodeEpoch`) — the same
iterated ``decode_step_seconds`` sums, in the same order, so timestamps
are bit-identical to single-stepping.  Per-token effects are *lazily
emitted*: :meth:`ServingInstance.sync` catches an instance up to the
present, and every cross-instance read or mutation point (placement
census, monitor queries, migration landings) syncs first, so no observer
can see mid-epoch staleness.  Milestones land, by construction, on an
epoch's final step, which is dispatched as a real event — lifecycle hooks
therefore fire at true simulated times in globally sorted order, exactly
as with one event per token.  ``InstanceConfig.epoch_coalescing=False``
(the ``--no-epoch`` escape hatch) caps every epoch at one step.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable

from repro.config import InstanceConfig
from repro.memory.blocks import KVPool, OutOfMemoryError
from repro.perfmodel.analytical import PerfModel
from repro.schedulers.base import IntraScheduler, StepKind, StepPlan
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventKind
from repro.workload.request import Phase, ReqState, Request

#: Callback signatures the cluster wires up.
TransitionHook = Callable[[Request, "ServingInstance", float], None]
CompletionHook = Callable[[Request, float], None]


class RequestSet:
    """Insertion-ordered request registry with set-style membership.

    The instance's resident-request census used to be a plain ``set``,
    which iterates in hash order — identical within one process, but not
    across machines or Python builds, so any census read that feeds
    placement or event emission would be a latent determinism bug
    (PAS003).  Backing the registry with a dict keeps add/discard/
    membership O(1) while making iteration order *admission order* —
    deterministic by construction, and what every observer (monitor
    sums, ``form_batch``'s pre-sort snapshot, invariant checks) now
    sees.
    """

    __slots__ = ("_requests",)

    def __init__(self) -> None:
        self._requests: dict[Request, None] = {}

    def add(self, req: Request) -> None:
        self._requests[req] = None

    def discard(self, req: Request) -> None:
        self._requests.pop(req, None)

    def __contains__(self, req: object) -> bool:
        return req in self._requests

    def __iter__(self):
        return iter(self._requests)

    def __len__(self) -> int:
        return len(self._requests)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rids = [r.rid for r in self._requests]
        return f"RequestSet({rids})"


class _DecodeEpoch:
    """One in-flight coalesced decode run: N analytically-timed steps.

    ``times[j]`` / ``latencies[j]`` are the completion time and duration
    of the epoch's ``j``-th step.  ``started`` counts steps whose KV
    growth and accounting have been applied, ``emitted`` counts steps
    whose tokens have been recorded; between them sits exactly one
    *in-flight* step (``started == emitted + 1``), mirroring the
    single-step engine where growth happens at step start and tokens
    appear at step end.  ``event`` is the pending ``STEP_COMPLETE`` at
    ``times[-1]`` (replaced when a mid-epoch dirtying event truncates
    the run down to its in-flight step).
    """

    __slots__ = ("plan", "times", "latencies", "event", "started", "emitted")

    def __init__(self, plan: StepPlan, times, latencies, event):
        self.plan = plan
        self.times: list[float] = times
        self.latencies: list[float] = latencies
        self.event = event
        self.started = 0
        self.emitted = 0


class ServingInstance:
    """Continuous-batching execution engine for one GPU instance."""

    def __init__(
        self,
        iid: int,
        config: InstanceConfig,
        perf: PerfModel,
        engine: SimulationEngine,
        scheduler: IntraScheduler,
    ):
        self.iid = iid
        self.config = config
        self.perf = perf
        self.engine = engine
        self.scheduler = scheduler
        self.pool = KVPool(
            gpu_capacity_tokens=config.gpu_kv_tokens(),
            cpu_capacity_tokens=config.cpu_kv_tokens(),
        )
        #: Resident-request census, iterated in admission order (see
        #: :class:`RequestSet` for why insertion order matters here).
        self.requests = RequestSet()
        self.busy = False
        self.overhead_s = 0.0
        self._dirty = True
        self._plan: StepPlan | None = None
        self._epoch: _DecodeEpoch | None = None
        self._emitting = False
        #: Running total of ``full_kv_tokens`` over admitted-but-unallocated
        #: requests (O(1) :meth:`pending_kv_tokens`); a pending request
        #: cannot generate, so its footprint is constant while counted.
        self._pending_kv = 0

        #: Wired by the cluster; default no-ops keep the instance standalone.
        self.on_transition: TransitionHook = lambda req, inst, now: None
        self.on_complete: CompletionHook = lambda req, now: None
        #: Fired once per request, at its first *answering* token (the
        #: paper's TTFT milestone); feeds the session lifecycle stream.
        self.on_first_token: CompletionHook = lambda req, now: None

        #: Optional shared rid -> [token time] log (timeline tooling).
        self.token_log: dict[int, list[float]] | None = None

        # counters for throughput/utilization reporting
        self.busy_time_s = 0.0
        self.decode_steps = 0
        self.prefill_steps = 0
        self.reforms = 0
        self.tokens_generated = 0
        self.swap_out_tokens = 0
        self.swap_in_tokens = 0

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def admit(self, req: Request, now: float) -> None:
        """A new request was routed here by the instance-level scheduler."""
        self.sync(now)
        req.instance_id = self.iid
        self.requests.add(req)
        self._pending_kv += req.full_kv_tokens
        self.scheduler.on_admit(req, now)
        self.mark_dirty()
        self.maybe_start_step(now)

    def accept_migrated(self, req: Request, now: float) -> None:
        """A phase-transitioned request's KV cache finished arriving."""
        self.sync(now)
        req.instance_id = self.iid
        tokens = req.full_kv_tokens
        on_gpu = self.pool.can_allocate_gpu(tokens)
        self.pool.allocate(req, tokens, on_gpu=on_gpu)
        req.set_state(ReqState.QUEUED if on_gpu else ReqState.PREEMPTED, now)
        self.requests.add(req)
        self.scheduler.on_admit(req, now)
        self.mark_dirty()
        self.maybe_start_step(now)

    def depart(self, req: Request, now: float) -> None:
        """The request is migrating away; KV is released by the migration
        manager once the transfer lands."""
        self.sync(now)
        req.set_state(ReqState.MIGRATING, now)
        self.requests.discard(req)
        if not self.pool.holds(req):
            self._pending_kv -= req.full_kv_tokens
        self.mark_dirty()

    def cancel_request(self, req: Request, now: float) -> bool:
        """Evict a resident request immediately (client cancellation).

        Frees its KV footprint — pool blocks if allocated (GPU or CPU),
        the pending-KV claim otherwise — and drops it from any in-flight
        plan.  An already-launched engine step still completes at its
        scheduled time (that compute was committed when the step began),
        but the cancelled request emits no further tokens: it is removed
        from the plan's request list before the step's emit runs.  The
        caller owns the request-side bookkeeping (``mark_cancelled``).
        Returns ``False`` when the request is not resident here.
        """
        if req not in self.requests:
            return False
        self.sync(now)
        # Truncates an in-flight decode epoch down to its started step,
        # so everything after this instant is re-planned without ``req``.
        self.mark_dirty()
        plan = self._plan
        if plan is not None and req in plan.requests:
            plan.requests.remove(req)
        self.requests.discard(req)
        if self.pool.holds(req):
            self.pool.release(req)
        else:
            self._pending_kv -= req.full_kv_tokens
        self.mark_dirty()
        self.maybe_start_step(now)
        return True

    def mark_dirty(self) -> None:
        self._dirty = True
        if self._epoch is not None and not self._emitting:
            # Something scheduling-relevant happened mid-epoch: the
            # remaining steps are no longer valid.  Keep the in-flight
            # step (its growth is already applied, exactly as a
            # single-step engine would have) and cut the rest.
            self.sync()
            self._truncate_epoch()

    # ------------------------------------------------------------------
    # residency mechanics (called by schedulers during form_batch)
    # ------------------------------------------------------------------
    def do_allocate(self, req: Request, now: float) -> None:
        """First admission to GPU memory (prompt KV reservation)."""
        self.pool.allocate(req, req.full_kv_tokens, on_gpu=True)
        self._pending_kv -= req.full_kv_tokens
        if req.skip_prefill and not req.prefill_done:
            # Figure 5 workload: the KV exists already; no prefill compute.
            req.prefill_done = True
            req.prefill_end_t = now

    def do_swap_out(self, req: Request, now: float) -> None:
        tokens = self.pool.swap_out(req)
        self.overhead_s += self.perf.swap_seconds(tokens)
        self.swap_out_tokens += tokens
        req.set_state(ReqState.PREEMPTED, now)

    def do_swap_in(self, req: Request, now: float) -> None:
        tokens = self.pool.swap_in(req)
        self.overhead_s += self.perf.swap_seconds(tokens)
        self.swap_in_tokens += tokens
        req.set_state(ReqState.QUEUED, now)

    # ------------------------------------------------------------------
    # census used by the instance-level scheduler
    # ------------------------------------------------------------------
    def pending_kv_tokens(self) -> int:
        """Prospective KV demand of admitted-but-unallocated requests.

        Between an arrival and its first ``form_batch`` the request holds no
        pool blocks yet; a router that ignored this in-flight demand would
        dogpile simultaneous arrivals onto whichever instance reports the
        smallest allocated footprint.
        """
        return self._pending_kv

    def total_kv_tokens(self) -> int:
        """``m_i``: total KV footprint, GPU plus CPU plus queued demand
        (Algorithm 1's load proxy)."""
        self.sync()
        return self.pool.total_kv_tokens() + self._pending_kv

    def gpu_free_tokens(self) -> int:
        self.sync()
        return self.pool.gpu_free_tokens()

    def live_requests(self) -> list[Request]:
        self.sync()
        return [r for r in self.requests if not r.finished]

    def check_invariants(self) -> None:
        """Running counters vs authoritative registries (property tests)."""
        self.sync()
        self.pool.check_invariants()
        pending = sum(
            r.full_kv_tokens
            for r in self.requests
            if not r.finished and not self.pool.holds(r)
        )
        if pending != self._pending_kv:
            raise AssertionError(
                f"instance {self.iid} pending-KV drift: "
                f"registry={pending} counter={self._pending_kv}"
            )

    # ------------------------------------------------------------------
    # step loop
    # ------------------------------------------------------------------
    def maybe_start_step(self, now: float) -> None:
        """Begin the next engine step unless one is already in flight."""
        if self.busy or self._emitting:
            return
        plan = self._plan
        if self._dirty or plan is None:
            plan = self.scheduler.form_batch(self, now)
            self._plan = plan
            self._dirty = False
            self.reforms += 1
        elif plan.kind == StepKind.DECODE and not self._growth_feasible(plan):
            plan = self.scheduler.form_batch(self, now)
            self._plan = plan
            self._dirty = False
            self.reforms += 1

        if plan.kind == StepKind.IDLE or not plan.requests:
            self._check_livelock(now)
            return

        if plan.kind == StepKind.PREFILL:
            # Reserve this step's tokens up front so concurrent migrations
            # cannot consume the blocks mid-step.
            for req in plan.requests:
                self.pool.grow(req, 1)
                if req.state != ReqState.RUNNING:
                    req.set_state(ReqState.RUNNING, now)
                elif req.in_answering and req.answer_sched_t is None:
                    req.answer_sched_t = now
            latency = self.perf.prefill_seconds(plan.prefill_tokens)
            latency += self.overhead_s
            self.overhead_s = 0.0
            self.busy = True
            self.busy_time_s += latency
            self.engine.schedule_in(latency, EventKind.STEP_COMPLETE, self)
            return

        # Decode: coalesce the provably-clean horizon into one epoch.
        if not plan.crossing_counts:
            plan.prepare_decode(self.pool.block_size)
        horizon = self._decode_horizon(plan)
        batch = len(plan.requests)
        base = plan.kv_total
        decode_seconds = self.perf.decode_step_seconds
        overhead = self.overhead_s
        self.overhead_s = 0.0
        t = now
        times: list[float] = []
        latencies: list[float] = []
        # Identical float arithmetic to single-stepping: each step's
        # latency is computed from the post-growth batch KV (exact ints)
        # and accumulated in step order; swap overhead lands on the first
        # step only (mid-epoch steps are clean by definition).
        for j in range(1, horizon + 1):
            latency = decode_seconds(batch, base + j * batch)
            if j == 1:
                latency += overhead
            t += latency
            times.append(t)
            latencies.append(latency)
        self.busy = True
        event = self.engine.schedule(times[-1], EventKind.STEP_COMPLETE, self)
        self._epoch = _DecodeEpoch(plan, times, latencies, event)
        self._begin_step(0, now)

    def on_step_complete(self, now: float) -> None:
        """Finish the in-flight step: emit tokens, react to milestones."""
        self.busy = False
        if self._epoch is not None:
            self._finish_epoch()
            self.maybe_start_step(now)
            return
        plan = self._plan
        if plan is None or plan.kind != StepKind.PREFILL:
            # pragma: no cover - defensive
            raise RuntimeError(
                f"instance {self.iid}: step completed without a prefill "
                "plan or decode epoch"
            )
        self.prefill_steps += 1
        for req in plan.requests:
            req.prefill_done = True
            req.prefill_end_t = now
            self._emit_token(req, now)
        self.mark_dirty()
        self.maybe_start_step(now)

    # ------------------------------------------------------------------
    # decode-epoch machinery
    # ------------------------------------------------------------------
    def sync(self, now: float | None = None, inclusive: bool = False) -> None:
        """Lazily emit epoch steps that are already in the past.

        Every cross-instance read or mutation entry point (placement
        census, monitor queries, admissions, migration landings) calls
        this first, so observers always see the exact state a single-step
        engine would show at ``now``.  Strictly-before semantics match
        event dispatch: a step completing at exactly ``now`` still has
        its event queued and will be dispatched in due order.
        ``inclusive`` is for horizon catch-up, where events at the cutoff
        itself would have been dispatched before the engine stopped.
        """
        epoch = self._epoch
        if epoch is None or self._emitting:
            return
        if now is None:
            now = self.engine.now
        times = epoch.times
        n = len(times)
        j = epoch.emitted
        if j >= n:
            return
        if inclusive:
            j1 = bisect_right(times, now, j)
        else:
            j1 = bisect_left(times, now, j)
        if j1 <= j:
            return
        # Steps before the epoch's final one are milestone-free by
        # horizon construction: advance them in bulk, then (only when
        # the cutoff swallowed the final step — horizon catch-up) emit
        # that one through the full per-token path, hooks and all.
        last = min(j1, n - 1)
        if last > j:
            self._bulk_advance(j, last)
        if j1 == n:
            self._emit_step(n - 1)

    def _begin_step(self, j: int, now: float | None = None) -> None:
        """Apply step ``j``'s start-of-step effects (growth, accounting)."""
        epoch = self._epoch
        plan = epoch.plan
        requests = plan.requests
        self.pool.grow_all(
            requests,
            plan.crossing_counts[plan.steps_taken % self.pool.block_size],
        )
        plan.steps_taken += 1
        plan.kv_total += len(requests)
        if j == 0:
            for req in requests:
                if req.state != ReqState.RUNNING:
                    req.set_state(ReqState.RUNNING, now)
                elif req.in_answering and req.answer_sched_t is None:
                    # Phase flipped mid-batch and the request kept its
                    # slot: its answering service starts with this step.
                    req.answer_sched_t = now
        self.busy_time_s += epoch.latencies[j]
        epoch.started = j + 1

    def _emit_step(self, j: int) -> None:
        """Record step ``j``'s tokens at its analytic completion time."""
        epoch = self._epoch
        now = epoch.times[j]
        self.decode_steps += 1
        self._emitting = True
        try:
            for req in epoch.plan.requests:
                self._emit_token(req, now)
        finally:
            self._emitting = False
        epoch.emitted = j + 1

    def _finish_epoch(self) -> None:
        """The epoch's final event fired: emit everything still owed."""
        epoch = self._epoch
        n = len(epoch.times)
        j = epoch.emitted
        if j < n:
            if j < n - 1:
                self._bulk_advance(j, n - 1)
            self._emit_step(n - 1)
        self._epoch = None

    def _bulk_advance(self, j0: int, j1: int) -> None:
        """Emit steps ``[j0, j1)`` and begin ``(j0, j1]`` in one pass.

        Every step strictly before the epoch's final one carries no
        milestone by horizon construction — no phase flip, completion,
        first answering token, or quantum expiry — so its per-token
        effects reduce to counter arithmetic and timestamp appends,
        applied here as slice extends instead of ``batch`` calls per
        step through :meth:`_emit_token`.
        """
        epoch = self._epoch
        plan = epoch.plan
        requests = plan.requests
        k = j1 - j0
        batch = len(requests)
        block_size = self.pool.block_size
        counts = plan.crossing_counts
        s = plan.steps_taken
        # Each full block_size-step cycle crosses exactly `batch` block
        # boundaries (every request once); walk the histogram for the
        # partial cycle.
        cycles, rem = divmod(k, block_size)
        crossings = cycles * batch
        for i in range(rem):
            crossings += counts[(s + i) % block_size]
        self.pool.grow_all_n(requests, k, crossings)
        plan.steps_taken = s + k
        plan.kv_total += k * batch
        latencies = epoch.latencies
        for j in range(j0 + 1, j1 + 1):
            # Scalar loop, not sum(): float accumulation order must stay
            # bit-identical to the per-step path.
            self.busy_time_s += latencies[j]
        self.decode_steps += k
        self.tokens_generated += k * batch
        window = epoch.times[j0:j1]
        token_log = self.token_log
        for req in requests:
            req.generated_tokens += k
            req.quantum_used += k
            if req.phase is not Phase.REASONING:
                req.answer_token_times.extend(window)
            if token_log is not None:
                token_log.setdefault(req.rid, []).extend(window)
        epoch.emitted = j1
        epoch.started = j1 + 1

    def _truncate_epoch(self) -> None:
        """Cut the in-flight epoch down to its already-started step."""
        epoch = self._epoch
        keep = epoch.started  # emitted steps plus the one in flight
        if keep >= len(epoch.times):
            return  # already at the final step; the event stands
        del epoch.times[keep:]
        del epoch.latencies[keep:]
        epoch.event.cancelled = True
        epoch.event = self.engine.schedule(
            epoch.times[-1], EventKind.STEP_COMPLETE, self
        )

    def _decode_horizon(self, plan: StepPlan) -> int:
        """Steps the plan can run before any externally visible milestone.

        The minimum over every batched request of: tokens to its phase
        flip (reasoning) or completion (answering), tokens to quantum
        expiry, and one token when its next token is its first answering
        one (a lifecycle-hook milestone) — then capped by the number of
        block-boundary crossings the free GPU pool can absorb.  Milestones
        therefore always land on the epoch's *final* step, whose
        ``STEP_COMPLETE`` is a real event dispatched at its true time.
        """
        if not self.config.epoch_coalescing:
            return 1
        quantum = self.scheduler.quantum_tokens
        horizon: int | None = None
        for r in plan.requests:
            if r.phase is Phase.REASONING:
                d = r.reasoning_len - r.generated_tokens
            elif r.first_answer_t is None:
                d = 1
            else:
                d = r.total_decode_tokens - r.generated_tokens
            if quantum is not None:
                q = quantum - r.quantum_used
                if q < d:
                    d = q
            if horizon is None or d < horizon:
                horizon = d
        if horizon is None or horizon < 1:  # pragma: no cover - defensive
            horizon = 1
        # Block cap: each full block_size-step cycle grows the batch by
        # exactly batch_size blocks; walk the crossing histogram for the
        # partial cycle the remaining free blocks allow.
        free = self.pool.gpu_free_blocks()
        batch = len(plan.requests)
        counts = plan.crossing_counts
        block_size = self.pool.block_size
        cycles, budget = divmod(free, batch)
        cap = cycles * block_size
        s = plan.steps_taken
        while True:
            crossing = counts[s % block_size]
            if crossing > budget:
                break
            budget -= crossing
            cap += 1
            s += 1
        if cap < horizon:
            horizon = cap
        if horizon < 1:
            horizon = 1
        return horizon

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _emit_token(self, req: Request, now: float) -> None:
        was_reasoning = req.phase == Phase.REASONING
        awaiting_first_answer = req.first_answer_t is None
        req.record_token(now)
        self.tokens_generated += 1
        if self.token_log is not None:
            self.token_log.setdefault(req.rid, []).append(now)
        if awaiting_first_answer and req.first_answer_t is not None:
            # Fired before any completion hook: a one-token answer reaches
            # its TTFT milestone and finishes on the same token.
            self.on_first_token(req, now)
        if req.finished:
            self.pool.release(req)
            self.requests.discard(req)
            self.mark_dirty()
            self.on_complete(req, now)
            return
        if was_reasoning and req.phase == Phase.ANSWERING:
            # The end-of-think token was just produced: phase boundary.
            self.mark_dirty()
            self.on_transition(req, self, now)
            if req.state == ReqState.MIGRATING:
                return
        quantum = self.scheduler.quantum_tokens
        if quantum is not None and req.quantum_used >= quantum:
            self.scheduler.on_quantum_expired(req, now)
            self.mark_dirty()

    def _growth_feasible(self, plan: StepPlan) -> bool:
        """Can every batched request take one more token without a reform?"""
        if not plan.crossing_counts:  # hand-built plan (tests): O(B) scan
            crossings = sum(
                1
                for r in plan.requests
                if r.kv_tokens % self.pool.block_size == 0
            )
            return crossings <= self.pool.gpu_free_blocks()
        crossings = plan.crossing_counts[
            plan.steps_taken % self.pool.block_size
        ]
        return crossings <= self.pool.gpu_free_blocks()

    def _check_livelock(self, now: float) -> None:
        live = self.live_requests()
        if not live:
            return
        movable = [r for r in live if r.state != ReqState.MIGRATING]
        if movable and self.pool.gpu_used_blocks == 0:
            biggest = max(r.full_kv_tokens for r in movable)
            raise OutOfMemoryError(
                f"instance {self.iid}: no request fits in an empty GPU pool "
                f"(largest footprint {biggest} tokens vs capacity "
                f"{self.pool.gpu_capacity_blocks * self.pool.block_size}); "
                "the workload exceeds single-request capacity"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServingInstance(iid={self.iid}, live={len(self.requests)}, "
            f"busy={self.busy}, kv={self.pool.gpu_used_blocks}blk)"
        )
