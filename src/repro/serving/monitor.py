"""Instance monitor (Figure 6): runtime signals for placement decisions.

The monitor continuously inspects each instance and reports the inputs the
instance-level scheduler's two algorithms consume:

* ``t_i``   — whether *all* answering requests on the instance currently
  meet their SLO.  An answering request misses its SLO when its token pacer
  reports insufficient remaining tokens (generation lagging the user's
  expected pace) or when a phase-transitioned request has waited longer
  than the TTFAT target for its first answering token.
* ``m_i``   — total KV footprint (GPU + CPU), Algorithm 1's load proxy.
* ``r_i``   — reasoning requests in the high-priority queue, and
* ``a_i``   — answering requests still inside their first quantum,
  Algorithm 2's interference proxies.
"""

from __future__ import annotations

import math

from repro.config import SLOConfig
from repro.core.pascal import ANSWERING_BAND, band_of
from repro.serving.instance import ServingInstance
from repro.workload.request import Request


def answering_starving(req: Request, now: float, slo: SLOConfig) -> bool:
    """Pacer view: is this answering request behind the user's pace?"""
    if req.first_answer_t is None:
        # No answering token yet: judge against the TTFAT target.
        if req.reasoning_end_t is None:
            return False
        return (now - req.reasoning_end_t) > slo.ttfat_target_s
    if req.finished:
        return False
    expected = (
        int(math.floor((now - req.first_answer_t) / slo.tpot_target_s)) + 1
    )
    generated = len(req.answer_token_times)
    return generated < expected


class InstanceMonitor:
    """Census provider over a set of serving instances."""

    def __init__(self, slo: SLOConfig):
        self.slo = slo

    def answering_slo_ok(self, inst: ServingInstance, now: float) -> bool:
        """``t_i``: True iff every answering request is keeping pace."""
        inst.sync(now)
        for req in inst.requests:
            if req.finished or not req.in_answering:
                continue
            if answering_starving(req, now, self.slo):
                return False
        return True

    def kv_footprint(self, inst: ServingInstance) -> int:
        """``m_i``: total memory occupied by KV cache (GPU + CPU)."""
        return inst.total_kv_tokens()

    def pending_decode_tokens(self, inst: ServingInstance) -> int:
        """Token-weighted load: decode tokens still owed to live requests.

        Queue depth counts a 60-token chat and an 8k-token chain of
        thought as equal load; this signal weighs each request by its
        outstanding decode work instead.  In the simulator the scripted
        remaining lengths are read directly (an idealized signal); a real
        deployment would substitute a length predictor, as
        ``length-predictive`` does for placement.
        """
        inst.sync()
        return sum(
            r.remaining_tokens for r in inst.requests if not r.finished
        )

    def reasoning_count(self, inst: ServingInstance) -> int:
        """``r_i``: requests currently in the high-priority queue."""
        inst.sync()
        return sum(
            1
            for r in inst.requests
            if not r.finished and band_of(r) != ANSWERING_BAND
        )

    def fresh_answering_count(self, inst: ServingInstance) -> int:
        """``a_i``: answering requests not past their first quantum."""
        inst.sync()
        return sum(
            1
            for r in inst.requests
            if not r.finished
            and band_of(r) == ANSWERING_BAND
            and r.level == 0
        )
