"""Token pacer (Andes-style, Section II-C and Figure 3).

The pacer sits between the engine and the user.  Tokens generated in bursts
are buffered and released at the user's expected reading pace (one token per
TPOT target); when generation stalls (preemption), the user keeps digesting
buffered tokens until the buffer runs dry — only then do they perceive
starvation.

Release times follow the recurrence::

    r_0 = g_0
    r_k = max(g_k, r_{k-1} + tpot_target)

i.e. a token is released as soon as it exists, but never faster than the
target pace.  This is the schedule the QoE metric integrates.
"""

from __future__ import annotations

import math


class TokenPacer:
    """Per-request release schedule and starvation detector."""

    def __init__(self, tpot_target_s: float):
        if tpot_target_s <= 0:
            raise ValueError(f"tpot target must be positive, got {tpot_target_s}")
        self.tpot_target_s = tpot_target_s
        self.first_token_t: float | None = None
        self.generated = 0
        self._last_release_t: float | None = None

    def on_token(self, now: float) -> float:
        """Record one generated token; returns its release time."""
        self.generated += 1
        if self.first_token_t is None:
            self.first_token_t = now
            self._last_release_t = now
            return now
        release = max(now, self._last_release_t + self.tpot_target_s)
        self._last_release_t = release
        return release

    def expected_by(self, now: float) -> int:
        """Tokens the user expects to have digested by ``now``.

        The expectation is anchored at the first release: the user reads one
        token immediately, then one per TPOT target.
        """
        if self.first_token_t is None or now < self.first_token_t:
            return 0
        return int(math.floor((now - self.first_token_t) / self.tpot_target_s)) + 1

    def released_by(self, now: float) -> int:
        """Tokens actually delivered to the user by ``now``.

        The pacer can never deliver more than it generated, and never faster
        than the expected pace, so this is the min of the two.
        """
        return min(self.expected_by(now), self.generated)

    def buffered(self, now: float) -> int:
        """Tokens generated but not yet released (the pacer's buffer)."""
        return self.generated - self.released_by(now)

    def starving(self, now: float) -> bool:
        """True when generation lags the user's expected digestion pace.

        This is the "insufficient remaining tokens" condition Algorithm 1
        reads from each instance's token pacer.
        """
        return self.expected_by(now) > self.generated


def release_schedule(token_times: list[float], tpot_target_s: float) -> list[float]:
    """Offline pacer replay: release times for a full generation history."""
    if tpot_target_s <= 0:
        raise ValueError(f"tpot target must be positive, got {tpot_target_s}")
    releases: list[float] = []
    for i, g in enumerate(token_times):
        if i == 0:
            releases.append(g)
        else:
            if g < token_times[i - 1]:
                raise ValueError("token times must be non-decreasing")
            releases.append(max(g, releases[-1] + tpot_target_s))
    return releases
