"""Named, seeded random streams.

Every stochastic component (arrival process, per-dataset token lengths)
draws from its own named stream derived from a single experiment seed, so
adding a new consumer never perturbs the draws of existing ones.
"""

from __future__ import annotations

import hashlib
import math
import random


def _derive_seed(root_seed: int, name: str) -> int:
    """Stable 64-bit sub-seed for ``name`` under ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """Factory of independent ``random.Random`` streams keyed by name."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The (memoized) stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(_derive_seed(self.seed, name))
        return self._streams[name]


def lognormal_params(mean: float, sigma: float) -> tuple[float, float]:
    """(mu, sigma) of a lognormal with the requested *arithmetic* mean.

    ``mean = exp(mu + sigma^2 / 2)`` so ``mu = ln(mean) - sigma^2 / 2``.
    """
    if mean <= 0:
        raise ValueError(f"lognormal mean must be positive, got {mean}")
    if sigma < 0:
        raise ValueError(f"lognormal sigma must be non-negative, got {sigma}")
    mu = math.log(mean) - sigma * sigma / 2.0
    return mu, sigma


def sample_lognormal_int(
    rng: random.Random,
    mean: float,
    sigma: float,
    lo: int,
    hi: int,
) -> int:
    """One integer lognormal draw with the given arithmetic mean, clipped.

    Clipping matches the paper's dataset histograms, whose supports are
    bounded by the figure axes (e.g. Arena-Hard reasoning <= ~15000 tokens).
    """
    if lo > hi:
        raise ValueError(f"empty clip range [{lo}, {hi}]")
    mu, sig = lognormal_params(mean, sigma)
    value = int(round(rng.lognormvariate(mu, sig)))
    return max(lo, min(hi, value))
