"""Deterministic discrete-event queue.

The simulator is a classic event-driven loop.  Determinism matters for
reproducibility (same seed => identical schedules), so ties on timestamps are
broken by a monotonically increasing sequence number rather than by object
identity.
"""

from __future__ import annotations

import heapq
from enum import Enum, auto
from typing import Any, Callable


class EventKind(Enum):
    """Kinds of events the serving simulator processes."""

    #: A new request reaches the cluster front-end.
    ARRIVAL = auto()
    #: A serving instance finished its current engine step.
    STEP_COMPLETE = auto()
    #: A KV-cache migration finished arriving at its destination.
    TRANSFER_COMPLETE = auto()
    #: Generic callback event (used by tests and auxiliary models).
    CALLBACK = auto()


class Event:
    """One scheduled occurrence.

    ``cancelled`` supports lazy deletion: the owner flips the flag and the
    engine skips the event when it is popped.  This is how stale
    ``STEP_COMPLETE`` events are invalidated after a forced re-schedule.
    """

    __slots__ = ("time", "seq", "kind", "payload", "cancelled")

    def __init__(self, time: float, seq: int, kind: EventKind, payload: Any):
        self.time = time
        self.seq = seq
        self.kind = kind
        self.payload = payload
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, seq={self.seq}, {self.kind.name}{flag})"


class EventQueue:
    """Min-heap of :class:`Event` with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event and return its handle (for cancellation)."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time, self._seq, kind, payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Pop the earliest non-cancelled event, or None when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time


Callback = Callable[[float], None]
