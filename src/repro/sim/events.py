"""Deterministic discrete-event queue.

The simulator is a classic event-driven loop.  Determinism matters for
reproducibility (same seed => identical schedules), so ties on timestamps are
broken by a monotonically increasing sequence number rather than by object
identity.
"""

from __future__ import annotations

import heapq
from enum import Enum, auto
from typing import Any, Callable


class EventKind(Enum):
    """Kinds of events the serving simulator processes."""

    #: A new request reaches the cluster front-end.
    ARRIVAL = auto()
    #: A serving instance finished its current engine step.
    STEP_COMPLETE = auto()
    #: A KV-cache migration finished arriving at its destination.
    TRANSFER_COMPLETE = auto()
    #: Generic callback event (used by tests and auxiliary models).
    CALLBACK = auto()
    #: A client abandoned its request (disconnect / explicit abort).
    CANCEL = auto()


class Event:
    """One scheduled occurrence.

    ``cancelled`` supports lazy deletion: the owner flips the flag and the
    engine skips the event when it is popped.  This is how stale
    ``STEP_COMPLETE`` events are invalidated after a forced re-schedule.

    Ordering is ``(time, kind priority, seq)``: arrivals dispatch before
    any other event kind sharing their exact timestamp, then FIFO.  A
    batch preload produced that order implicitly — every ARRIVAL was
    scheduled (and numbered) before the first handler ran — and pull-based
    feeding must reproduce it even though it interleaves arrival pushes
    with handler pushes, so the invariant lives in the comparator where
    neither path can miss it.
    """

    __slots__ = ("time", "seq", "kind", "priority", "payload", "cancelled")

    def __init__(self, time: float, seq: int, kind: EventKind, payload: Any):
        self.time = time
        self.seq = seq
        self.kind = kind
        self.priority = 0 if kind is EventKind.ARRIVAL else 1
        self.payload = payload
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, seq={self.seq}, {self.kind.name}{flag})"


class EventQueue:
    """Min-heap of :class:`Event` with deterministic tie-breaking.

    The ordering contract shared by every queue implementation: events pop
    in ``(time, kind priority, seq)`` order — strictly by timestamp,
    arrivals ahead of other kinds at equal timestamps, FIFO within a
    kind-priority class (see :class:`Event`).  The bucket-queue candidate
    below must honour it bit-for-bit — the simulator's determinism rests
    on it.

    The arrival-first tie rule is what makes *incremental* event
    production (:meth:`repro.sim.engine.SimulationEngine.attach_feed`)
    equivalent to a batch preload: preloading gives every arrival a lower
    sequence number than any handler-scheduled event, while a feed
    interleaves the two — the comparator guarantees both produce the same
    dispatch order at timestamp collisions.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event and return its handle (for cancellation)."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time, self._seq, kind, payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Pop the earliest non-cancelled event, or None when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time


class BucketEventQueue:
    """Calendar-queue candidate for the engine's hot path.

    Same API and the same ``(time, seq)`` ordering contract as
    :class:`EventQueue`, different mechanics: events land unsorted in
    fixed-width time buckets and each bucket is sorted lazily the first
    time it is consumed; a small heap of bucket indices (orders of
    magnitude fewer elements than the event heap) locates the next
    non-empty bucket.  ``python -m repro.harness bench`` times the two
    against each other under the Figure 9 workload's recorded event
    stream — this class exists to answer the ROADMAP's "is the next 2-3x
    single-run speedup in the event queue?" question, not to replace the
    default queue until the numbers say so.
    """

    def __init__(self, bucket_width_s: float = 0.05) -> None:
        if bucket_width_s <= 0:
            raise ValueError(
                f"bucket width must be positive, got {bucket_width_s}"
            )
        self._width = bucket_width_s
        self._buckets: dict[int, list[Event]] = {}
        #: Min-heap of bucket indices; an index appears exactly once,
        #: pushed when its bucket is created, popped when it drains.
        self._index_heap: list[int] = []
        #: Buckets currently sorted descending (consumable from the end).
        self._sorted: set[int] = set()
        self._seq = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event and return its handle (for cancellation)."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time, self._seq, kind, payload)
        self._seq += 1
        index = int(time / self._width)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [event]
            heapq.heappush(self._index_heap, index)
        else:
            bucket.append(event)
            self._sorted.discard(index)
        self._size += 1
        return event

    def _front_bucket(self) -> tuple[int, list[Event]] | None:
        """Earliest non-empty bucket, sorted for consumption from the end."""
        while self._index_heap:
            index = self._index_heap[0]
            bucket = self._buckets.get(index)
            if not bucket:
                heapq.heappop(self._index_heap)
                self._buckets.pop(index, None)
                self._sorted.discard(index)
                continue
            if index not in self._sorted:
                # Descending sort: list.pop() then yields (time, seq) order.
                bucket.sort(reverse=True)
                self._sorted.add(index)
            return index, bucket
        return None

    def pop(self) -> Event | None:
        """Pop the earliest non-cancelled event, or None when drained."""
        while True:
            front = self._front_bucket()
            if front is None:
                return None
            _, bucket = front
            event = bucket.pop()
            self._size -= 1
            if not event.cancelled:
                return event

    def peek_time(self) -> float | None:
        """Timestamp of the next live event without removing it."""
        while True:
            front = self._front_bucket()
            if front is None:
                return None
            _, bucket = front
            if bucket[-1].cancelled:
                bucket.pop()
                self._size -= 1
                continue
            return bucket[-1].time


Callback = Callable[[float], None]
