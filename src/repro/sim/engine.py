"""Simulation engine: the clock and the event dispatch loop.

The engine owns the event queue and the simulated clock.  Domain objects
(cluster, instances, migration manager) register handlers per event kind;
the engine guarantees handlers observe a monotonically non-decreasing clock.

Events reach the queue two ways:

* **push** — :meth:`SimulationEngine.schedule` / ``schedule_in`` place one
  event at an absolute/relative time (how domain objects react to other
  events);
* **pull** — :meth:`SimulationEngine.attach_feed` registers a lazy,
  time-ordered iterator of ``(time, kind, payload)`` items.  The engine
  materializes exactly one in-queue event per feed at a time and pulls the
  next item only when that head event is popped, so an unbounded arrival
  stream never has to be preloaded into the queue.  This is what lets the
  online :mod:`repro.api` session layer drive the simulator from
  incremental :class:`~repro.api.sources.ArrivalSource` iterators.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.sim.events import Event, EventKind, EventQueue

Handler = Callable[[float, Any], None]


class _Feed:
    """One attached pull source and its last-pulled timestamp."""

    __slots__ = ("iterator", "last_time")

    def __init__(self, iterator: Iterator[tuple[float, EventKind, Any]]):
        self.iterator = iterator
        self.last_time = float("-inf")


class SimulationEngine:
    """Event-driven simulation driver.

    Usage::

        engine = SimulationEngine()
        engine.register(EventKind.ARRIVAL, cluster.on_arrival)
        engine.schedule(0.0, EventKind.ARRIVAL, request)
        engine.run()
    """

    def __init__(
        self,
        horizon_s: float = float("inf"),
        max_events: int = 200_000_000,
        queue: EventQueue | None = None,
    ):
        # Any queue honouring EventQueue's (time, seq) ordering contract
        # works here; the benchmark suite injects instrumented/alternative
        # implementations (see repro.bench.eventqueue).
        self.queue = queue if queue is not None else EventQueue()
        self.now = 0.0
        self.horizon_s = horizon_s
        self.max_events = max_events
        self.events_processed = 0
        self._handlers: dict[EventKind, Handler] = {}
        self._running = False
        self._feeds: list[_Feed] = []
        #: Head events of live feeds, so a pop can identify its feed.
        self._feed_heads: dict[Event, _Feed] = {}

    def register(self, kind: EventKind, handler: Handler) -> None:
        """Bind ``handler(now, payload)`` to an event kind (one per kind)."""
        self._handlers[kind] = handler

    def schedule(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: t={time} < now={self.now}"
            )
        return self.queue.push(time, kind, payload)

    def schedule_in(self, delay: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event ``delay`` seconds from the current clock."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self.now + delay, kind, payload)

    def attach_feed(
        self, iterator: Iterator[tuple[float, EventKind, Any]]
    ) -> None:
        """Register a lazy, time-ordered event source.

        ``iterator`` yields ``(time, kind, payload)`` with non-decreasing
        times (a :class:`ValueError` pinpoints the first regression).  The
        engine keeps exactly one event of each feed in the queue, pulling
        the next item only when that head is dispatched, so feeds of
        unbounded length cost O(1) queue space.  Items whose time is
        already in the past are scheduled at the current clock — a late
        submission cannot arrive earlier than "now".
        """
        feed = _Feed(iter(iterator))
        self._feeds.append(feed)
        self._advance_feed(feed)

    def feeds_exhausted(self) -> bool:
        """True when every attached feed has been fully consumed."""
        return not self._feeds

    def detach_feeds(self) -> int:
        """Stop pulling from every attached feed (graceful-shutdown cut).

        Each feed's already-materialized head event still dispatches —
        its payload was accounted when it was pulled, so dropping it
        would break the cluster's conservation law — but no further
        items are drawn.  Returns the number of feeds detached.
        """
        count = len(self._feeds)
        self._feeds.clear()
        self._feed_heads.clear()
        return count

    def _advance_feed(self, feed: _Feed) -> None:
        """Pull the feed's next item into the queue (or retire the feed).

        One item at a time suffices for batch-equivalent ordering: the
        event comparator ranks arrivals ahead of other kinds at equal
        timestamps (see :class:`repro.sim.events.Event`), so an arrival
        pulled *after* a handler scheduled a same-time event still
        dispatches first — exactly as its up-front sequence number would
        have arranged in a preload.
        """
        try:
            time, kind, payload = next(feed.iterator)
        except StopIteration:
            self._feeds.remove(feed)
            return
        if time < feed.last_time:
            raise ValueError(
                f"feed items must be time-ordered: {time} after "
                f"{feed.last_time}"
            )
        feed.last_time = time
        event = self.queue.push(max(time, self.now), kind, payload)
        self._feed_heads[event] = feed

    def peek_next_time(self) -> float | None:
        """Timestamp of the next event (feeds included), or None when idle.

        Unlike ``queue.peek_time()`` this cannot miss work: attached feeds
        always have their head event materialized before the peek.
        """
        return self.queue.peek_time()

    def run(self) -> None:
        """Drain the event queue and feeds (or stop at the horizon/cap)."""
        if self._running:
            raise RuntimeError("engine is not re-entrant")
        self._running = True
        try:
            while self._dispatch_next():
                pass
        finally:
            self._running = False

    def step(self) -> bool:
        """Process exactly one event; returns False when nothing is due.

        Shares :meth:`run`'s dispatch path: an event beyond the horizon
        stays in the queue (so ``step`` and a later ``run`` observe the
        same sequence) and the ``max_events`` livelock guard applies.
        """
        return self._dispatch_next()

    def _dispatch_next(self) -> bool:
        """Pop and dispatch the next in-horizon event; False when none.

        Feeds keep their head event queued at all times, so the peek below
        sees pushed and pulled work alike; the event comparator's
        arrival-first tie rule keeps the incremental order identical to a
        batch preload even at exact timestamp collisions.
        """
        next_t = self.queue.peek_time()
        if next_t is None or next_t > self.horizon_s:
            return False
        event = self.queue.pop()
        self.now = event.time
        self.events_processed += 1
        if self.events_processed > self.max_events:
            raise RuntimeError(
                f"exceeded max_events={self.max_events}; "
                "likely a scheduling livelock"
            )
        feed = self._feed_heads.pop(event, None)
        if feed is not None:
            self._advance_feed(feed)
        handler = self._handlers.get(event.kind)
        if handler is None:
            raise RuntimeError(f"no handler registered for {event.kind}")
        handler(event.time, event.payload)
        return True
