"""Simulation engine: the clock and the event dispatch loop.

The engine owns the event queue and the simulated clock.  Domain objects
(cluster, instances, migration manager) register handlers per event kind;
the engine guarantees handlers observe a monotonically non-decreasing clock.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.events import Event, EventKind, EventQueue

Handler = Callable[[float, Any], None]


class SimulationEngine:
    """Event-driven simulation driver.

    Usage::

        engine = SimulationEngine()
        engine.register(EventKind.ARRIVAL, cluster.on_arrival)
        engine.schedule(0.0, EventKind.ARRIVAL, request)
        engine.run()
    """

    def __init__(
        self,
        horizon_s: float = float("inf"),
        max_events: int = 200_000_000,
        queue: EventQueue | None = None,
    ):
        # Any queue honouring EventQueue's (time, seq) ordering contract
        # works here; the benchmark suite injects instrumented/alternative
        # implementations (see repro.bench.eventqueue).
        self.queue = queue if queue is not None else EventQueue()
        self.now = 0.0
        self.horizon_s = horizon_s
        self.max_events = max_events
        self.events_processed = 0
        self._handlers: dict[EventKind, Handler] = {}
        self._running = False

    def register(self, kind: EventKind, handler: Handler) -> None:
        """Bind ``handler(now, payload)`` to an event kind (one per kind)."""
        self._handlers[kind] = handler

    def schedule(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: t={time} < now={self.now}"
            )
        return self.queue.push(time, kind, payload)

    def schedule_in(self, delay: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event ``delay`` seconds from the current clock."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self.now + delay, kind, payload)

    def run(self) -> None:
        """Drain the event queue (or stop at the horizon / event cap)."""
        if self._running:
            raise RuntimeError("engine is not re-entrant")
        self._running = True
        try:
            while self._dispatch_next():
                pass
        finally:
            self._running = False

    def step(self) -> bool:
        """Process exactly one event; returns False when nothing is due.

        Shares :meth:`run`'s dispatch path: an event beyond the horizon
        stays in the queue (so ``step`` and a later ``run`` observe the
        same sequence) and the ``max_events`` livelock guard applies.
        """
        return self._dispatch_next()

    def _dispatch_next(self) -> bool:
        """Pop and dispatch the next in-horizon event; False when none."""
        next_t = self.queue.peek_time()
        if next_t is None or next_t > self.horizon_s:
            return False
        event = self.queue.pop()
        self.now = event.time
        self.events_processed += 1
        if self.events_processed > self.max_events:
            raise RuntimeError(
                f"exceeded max_events={self.max_events}; "
                "likely a scheduling livelock"
            )
        handler = self._handlers.get(event.kind)
        if handler is None:
            raise RuntimeError(f"no handler registered for {event.kind}")
        handler(event.time, event.payload)
        return True
