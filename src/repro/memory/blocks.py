"""Paged KV-cache pool with GPU/CPU residency.

Models vLLM's PagedAttention block allocator at the granularity the paper's
scheduling decisions need: each request's KV cache occupies
``ceil(tokens / block_size)`` fixed-size blocks, wholly resident either in
GPU HBM or (after preemption) in CPU DRAM.  The pool enforces both
capacities and exposes the free-space queries the schedulers and the
adaptive-migration policy rely on.
"""

from __future__ import annotations

from repro.workload.request import Request


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation cannot be satisfied."""


class KVPool:
    """Per-instance KV cache accounting (GPU pool + CPU swap pool)."""

    def __init__(
        self,
        gpu_capacity_tokens: int,
        cpu_capacity_tokens: int,
        block_size: int = 16,
    ):
        if gpu_capacity_tokens < 0 or cpu_capacity_tokens < 0:
            raise ValueError("capacities must be non-negative")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = block_size
        self.gpu_capacity_blocks = gpu_capacity_tokens // block_size
        self.cpu_capacity_blocks = cpu_capacity_tokens // block_size
        self.gpu_used_blocks = 0
        self.cpu_used_blocks = 0
        #: High-water mark of GPU usage (defines "oracle capacity").
        self.peak_gpu_used_blocks = 0
        #: rid -> (tokens, on_gpu); authoritative residency registry.
        self._residency: dict[int, tuple[int, bool]] = {}
        #: Running token totals per residency side.  The registry stays
        #: authoritative; these counters make ``gpu_used_tokens`` /
        #: ``cpu_used_tokens`` / ``total_kv_tokens`` O(1) for the
        #: placement and monitor queries that fire on every arrival and
        #: phase transition.  ``check_invariants`` cross-checks them.
        self._gpu_tokens = 0
        self._cpu_tokens = 0

    def _note_gpu_usage(self) -> None:
        if self.gpu_used_blocks > self.peak_gpu_used_blocks:
            self.peak_gpu_used_blocks = self.gpu_used_blocks

    def peak_gpu_tokens(self) -> int:
        """Peak GPU KV usage observed so far, in tokens."""
        return self.peak_gpu_used_blocks * self.block_size

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to cache ``tokens`` tokens."""
        if tokens < 0:
            raise ValueError(f"tokens must be non-negative, got {tokens}")
        return -(-tokens // self.block_size)

    def gpu_free_blocks(self) -> int:
        return self.gpu_capacity_blocks - self.gpu_used_blocks

    def gpu_free_tokens(self) -> int:
        """Guaranteed-allocatable tokens on the GPU (conservative)."""
        return self.gpu_free_blocks() * self.block_size

    def gpu_used_tokens(self) -> int:
        return self._gpu_tokens

    def cpu_used_tokens(self) -> int:
        return self._cpu_tokens

    def total_kv_tokens(self) -> int:
        """GPU + CPU footprint: the ``m_i`` input of Algorithm 1."""
        return self._gpu_tokens + self._cpu_tokens

    def can_allocate_gpu(self, tokens: int) -> bool:
        return self.blocks_for(tokens) <= self.gpu_free_blocks()

    def holds(self, req: Request) -> bool:
        return req.rid in self._residency

    def on_gpu(self, req: Request) -> bool:
        entry = self._residency.get(req.rid)
        return entry is not None and entry[1]

    # ------------------------------------------------------------------
    # allocation lifecycle
    # ------------------------------------------------------------------
    def allocate(self, req: Request, tokens: int, on_gpu: bool = True) -> None:
        """Register a request's KV cache (initial admission or migration)."""
        if req.rid in self._residency:
            raise OutOfMemoryError(f"request {req.rid} already allocated")
        blocks = self.blocks_for(tokens)
        if on_gpu:
            if blocks > self.gpu_free_blocks():
                raise OutOfMemoryError(
                    f"GPU pool full: need {blocks} blocks, "
                    f"have {self.gpu_free_blocks()}"
                )
            self.gpu_used_blocks += blocks
            self._note_gpu_usage()
            self._gpu_tokens += tokens
        else:
            if blocks > self.cpu_capacity_blocks - self.cpu_used_blocks:
                raise OutOfMemoryError("CPU pool full")
            self.cpu_used_blocks += blocks
            self._cpu_tokens += tokens
        self._residency[req.rid] = (tokens, on_gpu)
        req.kv_tokens = tokens
        req.on_gpu = on_gpu

    def grow(self, req: Request, n_tokens: int = 1) -> None:
        """Extend a GPU-resident cache by newly generated tokens."""
        entry = self._residency.get(req.rid)
        if entry is None:
            raise OutOfMemoryError(f"request {req.rid} has no allocation")
        tokens, on_gpu = entry
        if not on_gpu:
            raise OutOfMemoryError(
                f"request {req.rid} cannot grow while swapped out"
            )
        new_tokens = tokens + n_tokens
        delta_blocks = self.blocks_for(new_tokens) - self.blocks_for(tokens)
        if delta_blocks > self.gpu_free_blocks():
            raise OutOfMemoryError("GPU pool full during growth")
        self.gpu_used_blocks += delta_blocks
        self._note_gpu_usage()
        self._gpu_tokens += n_tokens
        self._residency[req.rid] = (new_tokens, True)
        req.kv_tokens = new_tokens

    def grow_all(self, requests: list[Request], crossing_blocks: int) -> None:
        """Grow every request by one token in a single accounting pass.

        The decode fast path (``ServingInstance._begin_step``) knows, from
        the plan's crossing histogram, exactly how many block boundaries
        this step crosses — so the per-request ``blocks_for`` arithmetic of
        :meth:`grow` collapses to one counter update plus a registry write
        per request.  Every request must be GPU-resident (a decode plan
        only ever batches resident requests).
        """
        if crossing_blocks:
            if crossing_blocks > self.gpu_free_blocks():
                raise OutOfMemoryError("GPU pool full during growth")
            self.gpu_used_blocks += crossing_blocks
            self._note_gpu_usage()
        self._gpu_tokens += len(requests)
        residency = self._residency
        for req in requests:
            tokens = req.kv_tokens + 1
            req.kv_tokens = tokens
            residency[req.rid] = (tokens, True)

    def grow_all_n(
        self, requests: list[Request], n_steps: int, crossing_blocks: int
    ) -> None:
        """Grow every request by ``n_steps`` tokens in one accounting pass.

        The bulk form of :meth:`grow_all`, used when the decode fast path
        emits a run of milestone-free steps at once.  ``crossing_blocks``
        is the total over all ``n_steps`` steps (the caller walks the
        plan's crossing histogram); the horizon computation already
        reserved the budget, so exceeding free blocks indicates a caller
        bug, not backpressure.
        """
        if crossing_blocks:
            if crossing_blocks > self.gpu_free_blocks():
                raise OutOfMemoryError("GPU pool full during growth")
            self.gpu_used_blocks += crossing_blocks
            self._note_gpu_usage()
        self._gpu_tokens += n_steps * len(requests)
        residency = self._residency
        for req in requests:
            tokens = req.kv_tokens + n_steps
            req.kv_tokens = tokens
            residency[req.rid] = (tokens, True)

    def can_grow(self, req: Request, n_tokens: int = 1) -> bool:
        entry = self._residency.get(req.rid)
        if entry is None or not entry[1]:
            return False
        tokens = entry[0]
        delta = self.blocks_for(tokens + n_tokens) - self.blocks_for(tokens)
        return delta <= self.gpu_free_blocks()

    def swap_out(self, req: Request) -> int:
        """GPU -> CPU; returns tokens moved (for PCIe cost accounting)."""
        entry = self._residency.get(req.rid)
        if entry is None:
            raise OutOfMemoryError(f"request {req.rid} has no allocation")
        tokens, on_gpu = entry
        if not on_gpu:
            raise OutOfMemoryError(f"request {req.rid} already swapped out")
        blocks = self.blocks_for(tokens)
        if blocks > self.cpu_capacity_blocks - self.cpu_used_blocks:
            raise OutOfMemoryError("CPU pool full; cannot swap out")
        self.gpu_used_blocks -= blocks
        self.cpu_used_blocks += blocks
        self._gpu_tokens -= tokens
        self._cpu_tokens += tokens
        self._residency[req.rid] = (tokens, False)
        req.on_gpu = False
        return tokens

    def swap_in(self, req: Request) -> int:
        """CPU -> GPU; returns tokens moved."""
        entry = self._residency.get(req.rid)
        if entry is None:
            raise OutOfMemoryError(f"request {req.rid} has no allocation")
        tokens, on_gpu = entry
        if on_gpu:
            raise OutOfMemoryError(f"request {req.rid} already on GPU")
        blocks = self.blocks_for(tokens)
        if blocks > self.gpu_free_blocks():
            raise OutOfMemoryError("GPU pool full; cannot swap in")
        self.cpu_used_blocks -= blocks
        self.gpu_used_blocks += blocks
        self._note_gpu_usage()
        self._cpu_tokens -= tokens
        self._gpu_tokens += tokens
        self._residency[req.rid] = (tokens, True)
        req.on_gpu = True
        return tokens

    def release(self, req: Request) -> int:
        """Drop a request's cache entirely (completion or migration out)."""
        entry = self._residency.pop(req.rid, None)
        if entry is None:
            raise OutOfMemoryError(f"request {req.rid} has no allocation")
        tokens, on_gpu = entry
        blocks = self.blocks_for(tokens)
        if on_gpu:
            self.gpu_used_blocks -= blocks
            self._gpu_tokens -= tokens
        else:
            self.cpu_used_blocks -= blocks
            self._cpu_tokens -= tokens
        req.kv_tokens = 0
        req.on_gpu = False
        return tokens

    # ------------------------------------------------------------------
    # invariants (exercised by property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Internal consistency: registry totals match the running counters."""
        gpu_blocks = sum(
            self.blocks_for(t) for t, on_gpu in self._residency.values() if on_gpu
        )
        cpu_blocks = sum(
            self.blocks_for(t)
            for t, on_gpu in self._residency.values()
            if not on_gpu
        )
        gpu_tokens = sum(t for t, on_gpu in self._residency.values() if on_gpu)
        cpu_tokens = sum(
            t for t, on_gpu in self._residency.values() if not on_gpu
        )
        if gpu_tokens != self._gpu_tokens:
            raise AssertionError(
                f"GPU token-counter drift: registry={gpu_tokens} "
                f"counter={self._gpu_tokens}"
            )
        if cpu_tokens != self._cpu_tokens:
            raise AssertionError(
                f"CPU token-counter drift: registry={cpu_tokens} "
                f"counter={self._cpu_tokens}"
            )
        if gpu_blocks != self.gpu_used_blocks:
            raise AssertionError(
                f"GPU block leak: registry={gpu_blocks} "
                f"counter={self.gpu_used_blocks}"
            )
        if cpu_blocks != self.cpu_used_blocks:
            raise AssertionError(
                f"CPU block leak: registry={cpu_blocks} "
                f"counter={self.cpu_used_blocks}"
            )
        if self.gpu_used_blocks > self.gpu_capacity_blocks:
            raise AssertionError("GPU pool over capacity")
        if self.cpu_used_blocks > self.cpu_capacity_blocks:
            raise AssertionError("CPU pool over capacity")
