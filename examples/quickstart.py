"""Quickstart: serve a chat trace under each cluster policy and compare.

Builds an eight-instance cluster (the paper's evaluation deployment), runs
the same AlpacaEval2.0-style trace through the paper's main policies plus
the two extension policies (``slo-least-load``, ``length-predictive``),
and prints the user-experience metrics the paper optimizes: mean/tail
TTFT, answering-phase SLO violations, and serving throughput.

Run:  python examples/quickstart.py
"""

from repro import Cluster, ClusterConfig, InstanceConfig, TraceConfig, build_trace, collect
from repro.metrics.summary import percentile
from repro.workload.datasets import ALPACA_EVAL


def main() -> None:
    # Eight H100-96GB instances; the KV capacity is capped so the trace
    # actually pressures memory (the regime where scheduling matters).
    config = ClusterConfig(
        n_instances=8,
        instance=InstanceConfig(kv_capacity_tokens=24_000),
    )

    print("Serving 700 AlpacaEval2.0-style requests at 6.5 req/s...\n")
    header = (
        f"{'policy':18s} {'mean TTFT':>10s} {'p99 TTFT':>10s} "
        f"{'SLO viol':>9s} {'tokens/s':>9s} {'migrations':>10s}"
    )
    print(header)
    print("-" * len(header))

    for policy in (
        "fcfs",
        "rr",
        "pascal",
        "slo-least-load",
        "length-predictive",
    ):
        # Identical trace for every policy: same seed, same arrivals.
        trace = build_trace(
            TraceConfig(
                dataset=ALPACA_EVAL,
                n_requests=700,
                arrival_rate_per_s=6.5,
                seed=2026,
            )
        )
        cluster = Cluster(config, policy=policy)
        cluster.run_trace(trace)
        assert cluster.all_finished()

        metrics = collect(cluster)
        ttfts = metrics.ttfts()
        slo = metrics.slo_report(config.slo)
        print(
            f"{policy:18s} {metrics.mean_ttft():9.1f}s "
            f"{percentile(ttfts, 99):9.1f}s "
            f"{100 * slo.violation_rate:8.2f}% "
            f"{metrics.throughput_tokens_per_s:9.0f} "
            f"{len(metrics.transfer_latencies_s):10d}"
        )

    print(
        "\nPASCAL prioritizes the (user-invisible) reasoning phase and"
        "\ntime-shares the answering phase behind a token pacer, so it cuts"
        "\nTTFT without sacrificing answering-phase QoE or throughput."
    )


if __name__ == "__main__":
    main()
