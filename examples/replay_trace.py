"""Trace replay: record a workload once, rank every policy on it.

Loads the checked-in ``examples/sample_trace.jsonl`` (24 requests of the
Figure 16 reasoning-heavy mixture, recorded with
``python -m repro.harness record-trace``), prints its token statistics,
then replays it through the paper's policies at two offered-load tiers —
the recorded rate and a 2x rate-rescaled tier — and prints the per-policy
TTFT / TTFAT / QoE / SLO comparison tables.

The same flow works on production logs: convert them to the JSONL schema
(header ``{"format": "pascal-trace", "version": 1}``, then one object per
request with ``arrival_t``, ``prompt_len``, ``reasoning_len``,
``answer_len`` and optional ``dataset``/``id``) and point ``--trace`` or
:class:`repro.ReplayTraceConfig` at the file.

Run:  python examples/replay_trace.py
"""

import os

from repro import ReplayTraceConfig, load_trace
from repro.harness.replay import trace_compare
from repro.harness.runner import ReplaySettings
from repro.workload.trace import trace_token_stats

TRACE_PATH = os.path.join(os.path.dirname(__file__), "sample_trace.jsonl")
POLICIES = ("fcfs", "rr", "pascal", "slo-least-load")


def main() -> None:
    requests = load_trace(TRACE_PATH)
    stats = trace_token_stats(requests)
    print(
        f"Loaded {len(requests)} requests from {TRACE_PATH}\n"
        f"  mean prompt {stats['prompt_mean']:.0f} tokens, "
        f"mean reasoning {stats['reasoning_mean']:.0f}, "
        f"mean answering {stats['answering_mean']:.0f} "
        f"(max reasoning {stats['reasoning_max']:.0f})\n"
    )

    # A small two-instance deployment keeps the demo quick; the recorded
    # trace is identical for every policy and both load tiers.
    settings = ReplaySettings(n_instances=2, kv_capacity_tokens=12_000)
    for rate_scale in (1.0, 2.0):
        trace = ReplayTraceConfig(path=TRACE_PATH, rate_scale=rate_scale)
        result = trace_compare(
            trace, policies=POLICIES, settings=settings, jobs=1
        )
        print(result.render())
        print()


if __name__ == "__main__":
    main()
