"""Live serving-session demo: online submission, lifecycle events,
admission control and mid-run observation — none of which the batch path
(`build_trace` -> `run_trace` -> `collect`) can express.

Run::

    PYTHONPATH=src python examples/live_session.py

What it shows:

1. a `ServingSession` fed by a *composed* arrival source — a synthetic
   chat stream merged with a burst of problem-solving requests;
2. a `MaxInFlightAdmission` gate applying backpressure (rejections are
   explicit, accounted outcomes — not SLO violations);
3. a subscriber receiving per-request lifecycle events (admit, phase
   change, first token, complete, reject);
4. `step(until=...)` time-sliced execution with mid-run submission and
   mid-run metrics snapshots, then a final `drain()`.
"""

import random

from repro.api import (
    ListSource,
    MaxInFlightAdmission,
    MergedSource,
    ServingSession,
    SessionSubscriber,
    SyntheticSource,
)
from repro.config import ClusterConfig, InstanceConfig
from repro.workload.datasets import ALPACA_EVAL, GPQA
from repro.workload.request import Request
from repro.workload.trace import TraceConfig


class TailLogger(SessionSubscriber):
    """Counts events; prints only the milestones EventPrinter drowns out."""

    def __init__(self):
        self.counts = {}

    def _bump(self, kind):
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def on_admit(self, handle, now, instance_id):
        self._bump("admit")

    def on_reject(self, handle, now, reason):
        self._bump("reject")
        print(f"  !! t={now:7.2f}s request {handle.rid} rejected: {reason}")

    def on_phase_change(self, handle, now):
        self._bump("phase")

    def on_first_token(self, handle, now):
        self._bump("first-token")

    def on_complete(self, handle, now):
        self._bump("complete")


def main() -> None:
    config = ClusterConfig(
        n_instances=4,
        instance=InstanceConfig(kv_capacity_tokens=40000),
    )

    # A chat stream plus a co-arriving burst of heavy reasoning requests.
    chat = SyntheticSource(
        TraceConfig(ALPACA_EVAL, n_requests=40, arrival_rate_per_s=1.5, seed=11)
    )
    burst_rng = random.Random(3)
    burst = ListSource(
        [
            GPQA.sample_request(1000 + i, 5.0 + 0.01 * i, burst_rng)
            for i in range(6)
        ]
    )

    session = ServingSession(
        policy="pascal",
        config=config,
        admission=MaxInFlightAdmission(24, defer_s=None),
    )
    log = session.subscribe(TailLogger())
    session.attach(MergedSource([chat, burst]))

    # Advance one simulated minute at a time, observing as we go.
    for minute in range(1, 4):
        session.step(until=60.0 * minute)
        snapshot = session.metrics()
        ttfts = snapshot.ttfts()
        mean_ttft = sum(ttfts) / len(ttfts) if ttfts else float("nan")
        print(
            f"t={session.now:7.2f}s  submitted={session.n_submitted:3d}  "
            f"in-flight={session.n_in_flight:2d}  "
            f"completed={session.n_completed:3d}  "
            f"rejected={session.n_rejected}  mean-ttft={mean_ttft:6.2f}s"
        )

    # An operator injects a probe request mid-run ("late": its nominal
    # arrival is long past — it is admitted at the current clock).
    probe = Request(
        rid=9999, prompt_len=64, reasoning_len=300, answer_len=80,
        arrival_t=0.0, dataset="probe",
    )
    handle = session.submit(probe)
    print(f"probe submitted at t={session.now:.2f}s -> {handle.status}")

    metrics = session.drain()
    print(f"probe finished: ttft={handle.ttft():.2f}s status={handle.status}")
    print(f"event counts: {dict(sorted(log.counts.items()))}")
    report = metrics.slo_report(config.slo)
    print(
        f"drained: {len(metrics.requests)} completed, "
        f"{metrics.n_rejected} rejected, "
        f"SLO violations {100 * report.violation_rate:.1f}% "
        f"(rejected requests are not violations)"
    )


if __name__ == "__main__":
    main()
