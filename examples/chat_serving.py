"""Chat serving scenario: Arena-Hard across low/medium/high arrival rates.

Reproduces the Section V evaluation loop in miniature: the same trace is
replayed at three calibrated load tiers under each scheduler, and the
per-tier TTFT distribution, answering SLO attainment and throughput are
tabulated — the same axes as Figures 9, 11 and 12.

Run:  python examples/chat_serving.py
"""

from repro import Cluster, collect
from repro.harness.runner import EvalSettings, measured_capacity_req_per_s
from repro.metrics.summary import percentile
from repro.workload.datasets import ARENA_HARD
from repro.workload.trace import TraceConfig, build_trace


def main() -> None:
    settings = EvalSettings(
        n_requests=500,
        kv_capacity_tokens=30_000,
        trace_residency_multiple=3.0,
    )
    capacity = measured_capacity_req_per_s(ARENA_HARD, settings)
    print(
        f"Measured cluster capacity for {ARENA_HARD.name}: "
        f"{capacity:.2f} req/s\n"
    )

    config = settings.cluster_config()
    n_requests = settings.n_requests_for(ARENA_HARD)
    for tier, factor in settings.load_factors:
        rate = capacity * factor
        print(
            f"=== {tier} tier: {rate:.2f} req/s "
            f"({factor:.0%} of capacity), {n_requests} requests ==="
        )
        for policy in ("fcfs", "rr", "pascal"):
            trace = build_trace(
                TraceConfig(
                    dataset=ARENA_HARD,
                    n_requests=n_requests,
                    arrival_rate_per_s=rate,
                    seed=7,
                )
            )
            cluster = Cluster(config, policy=policy)
            cluster.run_trace(trace)
            metrics = collect(cluster)
            ttfts = metrics.ttfts()
            slo = metrics.slo_report(config.slo)
            print(
                f"  {policy:8s} meanTTFT={metrics.mean_ttft():6.1f}s "
                f"p50={percentile(ttfts, 50):6.1f}s "
                f"p99={percentile(ttfts, 99):7.1f}s "
                f"SLO viol={100 * slo.violation_rate:5.2f}% "
                f"thr={metrics.throughput_tokens_per_s:6.0f} tok/s"
            )
        print()

    print(
        "Higher tiers pressure GPU memory; FCFS's head-of-line blocking"
        "\ninflates TTFT while PASCAL's phase-aware hierarchy absorbs the"
        "\nload with the lowest tail latency and SLO violations."
    )


if __name__ == "__main__":
    main()
