"""Writing a custom cluster policy against the registry seam.

Every scheduling scenario is a :class:`repro.ClusterPolicy`: it picks the
intra-instance scheduler, places arrivals, and routes phase transitions
(including KV-cache migration).  Registering a subclass makes its name a
first-class policy everywhere — ``Cluster(config, policy="...")``, the
figure harness, and ``python -m repro.harness --list-policies``.

This example builds a deliberately naive "sticky-hash" policy — route
each arrival to `instances[rid % n]`, read no cluster state, never
migrate (a stand-in for any routing idea you want to try) — and races it
against the built-ins on one trace.

Run:  python examples/custom_policy.py
"""

from repro import (
    Cluster,
    ClusterConfig,
    ClusterPolicy,
    InstanceConfig,
    TraceConfig,
    build_trace,
    collect,
    register_policy,
)
from repro.metrics.summary import percentile
from repro.schedulers.round_robin import RoundRobinScheduler
from repro.workload.datasets import ARENA_HARD


@register_policy
class StickyHashPolicy(ClusterPolicy):
    """Stateless request-id hashing: no load signal, no migration.

    A useful *lower bound* for placement experiments: any policy that
    reads cluster state should beat it.
    """

    name = "sticky-hash"

    # The instance id lets a policy compose heterogeneous pools (see
    # `tiered-express`); a homogeneous policy just ignores it.  The old
    # zero-argument signature still runs, with a DeprecationWarning.
    def make_intra_scheduler(self, iid):
        return RoundRobinScheduler(
            quantum_tokens=self.config.instance.scheduler.token_quantum
        )

    def place_arrival(self, req, now):
        return self.instances[req.rid % len(self.instances)]

    # on_phase_transition default: stay on the current instance.


def main() -> None:
    config = ClusterConfig(
        n_instances=8,
        instance=InstanceConfig(kv_capacity_tokens=24_000),
    )
    header = (
        f"{'policy':18s} {'mean TTFT':>10s} {'p99 TTFT':>10s} "
        f"{'SLO viol':>9s} {'migrations':>10s}"
    )
    print("Arena-Hard, 500 requests at 4.0 req/s\n")
    print(header)
    print("-" * len(header))
    for policy in ("sticky-hash", "rr", "slo-least-load", "pascal"):
        trace = build_trace(
            TraceConfig(
                dataset=ARENA_HARD,
                n_requests=500,
                arrival_rate_per_s=4.0,
                seed=99,
            )
        )
        cluster = Cluster(config, policy=policy)
        cluster.run_trace(trace)
        assert cluster.all_finished()
        metrics = collect(cluster)
        slo = metrics.slo_report(config.slo)
        print(
            f"{policy:18s} {metrics.mean_ttft():9.1f}s "
            f"{percentile(metrics.ttfts(), 99):9.1f}s "
            f"{100 * slo.violation_rate:8.2f}% "
            f"{len(metrics.transfer_latencies_s):10d}"
        )
    print(
        "\nsticky-hash ignores load and loses to every state-aware router;"
        "\nswap in your own placement idea and see where it lands."
    )


if __name__ == "__main__":
    main()
