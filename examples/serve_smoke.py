"""End-to-end smoke of the real-time serving gateway (CI: serve-smoke).

Spawns ``python -m repro.harness serve --realtime --port 0`` as a
subprocess, then — with a plain asyncio client, no HTTP library —

1. streams one chat completion to the end (``data: [DONE]``),
2. opens a second, much longer stream and drops the connection
   mid-stream, which the gateway must surface as a *cancellation*,
3. polls ``/metrics`` until exactly one cancel and one completion show,
4. sends SIGTERM and expects a clean exit (code 0) with the final
   accounting line,
5. replays the recorded live trace offline and checks the cancellation
   reproduces.

Exit code 0 = all good; anything else prints the failing step.

Run directly::

    python examples/serve_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

HOST = "127.0.0.1"
TIME_SCALE = 10.0


def _request_head(path: str, method: str, headers: dict, body: bytes) -> bytes:
    lines = [f"{method} {path} HTTP/1.1", f"Host: {HOST}"]
    lines += [f"{k}: {v}" for k, v in headers.items()]
    lines += [f"Content-Length: {len(body)}", "Connection: close", "", ""]
    return "\r\n".join(lines).encode() + body


async def _read_headers(reader: asyncio.StreamReader) -> str:
    head = await reader.readuntil(b"\r\n\r\n")
    return head.decode("latin-1")


async def stream_completion(port: int, reasoning: int, answer: int,
                            abort_after: int | None = None) -> int:
    """Stream one completion; returns content chunks seen.

    With ``abort_after`` set, hard-closes the connection after that many
    content chunks (the mid-stream disconnect the gateway must turn into
    a cancellation).
    """
    body = json.dumps(
        {
            "model": "pascal-sim",
            "stream": True,
            "messages": [{"role": "user", "content": "smoke test"}],
        }
    ).encode()
    reader, writer = await asyncio.open_connection(HOST, port)
    writer.write(
        _request_head(
            "/v1/chat/completions",
            "POST",
            {
                "Content-Type": "application/json",
                "x-pascal-reasoning-tokens": str(reasoning),
                "x-pascal-answer-tokens": str(answer),
            },
            body,
        )
    )
    await writer.drain()
    head = await _read_headers(reader)
    assert "200 OK" in head.splitlines()[0], head
    assert "text/event-stream" in head, head
    chunks = 0
    done = False
    while True:
        line = await reader.readline()
        if not line:
            break
        line = line.strip()
        if not line.startswith(b"data: "):
            continue
        data = line[len(b"data: "):]
        if data == b"[DONE]":
            done = True
            break
        delta = json.loads(data)["choices"][0]["delta"]
        if "content" in delta:
            chunks += 1
            if abort_after is not None and chunks >= abort_after:
                # Hard close mid-stream: abort the transport without a
                # FIN-then-drain dance, like a killed client process.
                writer.transport.abort()
                return chunks
    writer.close()
    if abort_after is None:
        assert done, "stream ended without [DONE]"
        assert chunks == answer, f"expected {answer} chunks, got {chunks}"
    return chunks


async def get_json(port: int, path: str) -> dict:
    reader, writer = await asyncio.open_connection(HOST, port)
    writer.write(_request_head(path, "GET", {}, b""))
    await writer.drain()
    head = await _read_headers(reader)
    assert "200 OK" in head.splitlines()[0], (path, head)
    match = re.search(r"content-length: (\d+)", head.lower())
    assert match, head
    payload = json.loads(await reader.readexactly(int(match.group(1))))
    writer.close()
    return payload


async def drive(port: int) -> None:
    models = await get_json(port, "/v1/models")
    assert models["data"][0]["id"] == "pascal-sim", models

    # 1. One short completion, streamed to the end.
    await stream_completion(port, reasoning=24, answer=8)

    # 2. One long completion, aborted after two content chunks.
    await stream_completion(
        port, reasoning=4000, answer=1000, abort_after=2
    )

    # 3. The abort must surface as a cancellation (poll: the disconnect
    # is noticed by the pacing loop, not synchronously).
    deadline = time.monotonic() + 30.0
    while True:
        metrics = await get_json(port, "/metrics")
        if metrics["cancelled"] == 1 and metrics["completed"] >= 1:
            break
        if time.monotonic() > deadline:
            raise AssertionError(f"cancel never surfaced: {metrics}")
        await asyncio.sleep(0.05)
    assert metrics["submitted"] == 2, metrics
    assert metrics["rejected"] == 0, metrics


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="serve-smoke-")
    trace_path = os.path.join(tmp, "live.jsonl")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.harness",
            "serve",
            "--realtime",
            "--port",
            "0",
            "--host",
            HOST,
            "--time-scale",
            str(TIME_SCALE),
            "--quiet",
            "--record-trace",
            trace_path,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        assert proc.stdout is not None
        banner = proc.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", banner)
        assert match, f"no port banner: {banner!r}"
        port = int(match.group(1))

        asyncio.run(drive(port))

        # 4. Graceful shutdown: SIGTERM -> drain -> accounting -> exit 0.
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, (proc.returncode, out)
        final = [
            line for line in out.splitlines()
            if line.startswith("serve: final")
        ]
        assert final, out
        assert "cancelled=1" in final[0], final[0]
        assert "submitted=2" in final[0], final[0]
        print(f"gateway smoke ok: {final[0]}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    # 5. The recorded live trace replays the cancellation offline.
    replay = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.harness",
            "serve",
            "--trace",
            trace_path,
            "--quiet",
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert replay.returncode == 0, replay.stderr
    assert "cancelled=1" in replay.stdout, replay.stdout
    print("offline replay reproduces the cancellation")
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
