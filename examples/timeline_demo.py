"""Figure 2 timeline demo: watch the schedulers interleave three requests.

Renders ASCII execution timelines for the paper's didactic scenario —
requests A, B, C arriving at t = 0, 1, 2 with GPU memory for two and an RR
token quantum of four — under oracle, FCFS and round-robin scheduling.

Run:  python examples/timeline_demo.py
"""

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, InstanceConfig, SchedulerConfig
from repro.harness.timeline import ascii_timeline
from repro.perfmodel.unit import UnitPerfModel
from repro.workload.synthetic import fixed_length_requests


def run_policy(policy: str, capacity_requests: int):
    instance = InstanceConfig(
        kv_capacity_tokens=capacity_requests * 16,
        scheduler=SchedulerConfig(token_quantum=4),
    )
    config = ClusterConfig(n_instances=1, instance=instance)
    cluster = Cluster(config, policy=policy, perf=UnitPerfModel(1.0))
    log = cluster.enable_token_log()
    requests = fixed_length_requests(
        3, prompt_len=1, reasoning_len=4, answer_len=4,
        arrival_times=[0.0, 1.0, 2.0],
    )
    requests[2].answer_len = 3  # request C is one token shorter
    cluster.run_trace(requests)
    return requests, log


def main() -> None:
    print(__doc__)
    for policy, capacity in (("oracle", 3), ("fcfs", 2), ("rr", 2)):
        requests, log = run_policy(policy, capacity)
        req_c = requests[2]
        print(f"--- {policy} ---")
        print(ascii_timeline(requests, log))
        print(
            f"request C: waited {req_c.first_sched_t - req_c.arrival_t:.0f} "
            f"time units, TTFT {req_c.ttft():.0f}, "
            f"preemptions {req_c.n_preemptions}"
        )
        print()

    print(
        "FCFS blocks request C until a slot frees (head-of-line blocking);"
        "\nRR's token quantum preempts A so C starts within ~2 units —"
        "\nthe Figure 2 trade-off PASCAL resolves per phase."
    )


if __name__ == "__main__":
    main()
