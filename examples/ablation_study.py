"""Ablations: what migration and the adaptive override each contribute.

Runs the full PASCAL against its two ablated variants from the paper:

* ``pascal-nomigration`` (Figure 13) — hierarchical queues but requests
  are pinned to the instance Algorithm 1 chose; phase-transitioned
  requests can stall behind their home instance's reasoning queue.
* ``pascal-nonadaptive`` (Figure 15) — Algorithm 2 migration always fires,
  even when the target instance has no free GPU memory.

Run:  python examples/ablation_study.py
"""

from repro import Cluster, collect
from repro.harness.runner import EvalSettings, measured_capacity_req_per_s
from repro.metrics.summary import percentile
from repro.workload.datasets import ALPACA_EVAL
from repro.workload.trace import TraceConfig, build_trace

VARIANTS = ("pascal", "pascal-nomigration", "pascal-nonadaptive")


def main() -> None:
    settings = EvalSettings(
        n_requests=500,
        kv_capacity_tokens=30_000,
        trace_residency_multiple=3.0,
    )
    capacity = measured_capacity_req_per_s(ALPACA_EVAL, settings)
    rate = capacity * 1.1
    n_requests = settings.n_requests_for(ALPACA_EVAL)
    config = settings.cluster_config()
    print(
        f"AlpacaEval2.0, {n_requests} requests at {rate:.2f} req/s "
        f"(high tier)\n"
    )
    header = (
        f"{'variant':20s} {'meanTTFT':>9s} {'p99 TTFT':>9s} "
        f"{'p99 blocking':>12s} {'SLO viol':>9s} {'p50 e2e':>8s} "
        f"{'migrations':>10s}"
    )
    print(header)
    print("-" * len(header))

    for policy in VARIANTS:
        trace = build_trace(
            TraceConfig(
                dataset=ALPACA_EVAL,
                n_requests=n_requests,
                arrival_rate_per_s=rate,
                seed=13,
            )
        )
        cluster = Cluster(config, policy=policy)
        cluster.run_trace(trace)
        metrics = collect(cluster)
        ttfts = metrics.ttfts()
        blocking = metrics.blocking_latencies()
        slo = metrics.slo_report(config.slo)
        e2e = metrics.e2e_latencies()
        print(
            f"{policy:20s} {metrics.mean_ttft():8.1f}s "
            f"{percentile(ttfts, 99):8.1f}s "
            f"{percentile(blocking, 99) if blocking else 0.0:11.2f}s "
            f"{100 * slo.violation_rate:8.2f}% "
            f"{percentile(e2e, 50):7.1f}s "
            f"{len(metrics.transfer_latencies_s):10d}"
        )

    print(
        "\nFigure 13: pinning requests (NoMigration) stalls phase"
        "\ntransitions behind the home instance's reasoning queue."
        "\nFigure 15: migrating blindly (NonAdaptive) ships KV caches onto"
        "\nmemory-starved instances and trades SLO violations for nothing."
    )


if __name__ == "__main__":
    main()
