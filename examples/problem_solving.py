"""Problem-solving scenario: reasoning-heavy workloads (Figure 16 setting).

Half the requests come from Arena-Hard chat, half from MATH-500 / GPQA /
LiveCodeBench, whose chains of thought run up to 8.5x longer than their
answers.  With answering phases this short there is little phase
contention, so PASCAL's advantage narrows — exactly the paper's Figure 16
discussion — but it still avoids FCFS's head-of-line blocking.

Run:  python examples/problem_solving.py
"""

from repro import Cluster, collect
from repro.harness.runner import EvalSettings, measured_capacity_req_per_s
from repro.metrics.summary import percentile, tail_ttft_bins
from repro.workload.datasets import reasoning_heavy_mix
from repro.workload.trace import TraceConfig, build_trace


def main() -> None:
    mix = reasoning_heavy_mix()
    settings = EvalSettings(
        n_requests=500,
        kv_capacity_tokens=30_000,
        trace_residency_multiple=3.0,
    )
    capacity = measured_capacity_req_per_s(mix, settings)
    rate = capacity * 1.1
    n_requests = settings.n_requests_for(mix)
    print(
        f"Mixed workload '{mix.name}': capacity {capacity:.2f} req/s, "
        f"running {n_requests} requests at {rate:.2f} req/s\n"
    )

    config = settings.cluster_config()
    results = {}
    for policy in ("fcfs", "rr", "pascal"):
        trace = build_trace(
            TraceConfig(
                dataset=mix,
                n_requests=n_requests,
                arrival_rate_per_s=rate,
                seed=16,
            )
        )
        cluster = Cluster(config, policy=policy)
        cluster.run_trace(trace)
        results[policy] = collect(cluster)
        metrics = results[policy]
        ttfts = metrics.ttfts()
        slo = metrics.slo_report(config.slo)
        print(
            f"{policy:8s} meanTTFT={metrics.mean_ttft():6.1f}s "
            f"p99={percentile(ttfts, 99):7.1f}s "
            f"SLO viol={100 * slo.violation_rate:5.2f}% "
            f"thr={metrics.throughput_tokens_per_s:6.0f} tok/s"
        )

    print("\nTail TTFT by reasoning-length bin (512-token bins):")
    bins = {
        policy: {b.lo: b for b in tail_ttft_bins(m.requests, bin_width=512)}
        for policy, m in results.items()
    }
    shared = sorted(
        set(bins["fcfs"]) & set(bins["rr"]) & set(bins["pascal"])
    )
    print(f"{'bin':>14s} {'fcfs':>8s} {'rr':>8s} {'pascal':>8s} {'vs fcfs':>8s}")
    for lo in shared:
        fcfs_v = bins["fcfs"][lo].tail_value
        pascal_v = bins["pascal"][lo].tail_value
        reduction = 100 * (fcfs_v - pascal_v) / fcfs_v if fcfs_v else 0.0
        print(
            f"{bins['pascal'][lo].label:>14s} {fcfs_v:8.1f} "
            f"{bins['rr'][lo].tail_value:8.1f} {pascal_v:8.1f} "
            f"{reduction:+7.1f}%"
        )


if __name__ == "__main__":
    main()
