"""Repo-root pytest configuration.

Defines the ``--update-golden`` flag (options must be registered from a
rootdir conftest): rewrite ``tests/golden/*.txt`` from the current outputs
instead of asserting against them, so an intentional figure change is a
one-line regeneration::

    python -m pytest tests/test_golden_tables.py --update-golden
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden tables from current output instead of "
        "asserting byte-identity",
    )
